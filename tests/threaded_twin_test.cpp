// Threaded-vs-sim twin equivalence, and real-concurrency convergence.
//
// The shard-per-thread refactor's central claim: moving execution onto
// real threads changes WHERE code runs, never WHAT it computes.  The
// twin here drives one deterministic client trace through two stores —
//
//   * threaded: ThreadedTransport with 4 shards, every operation
//     entering the coordinator's serial domain through run_at
//     (put_direct / get_direct, the dvvd request path), settled to
//     quiescence after each op;
//   * sim twin: SimTransport, fault-free, batch delivery on, the same
//     trace pumped to empty after each op —
//
// and requires byte-identical end states: every replica's full codec
// encoding for every key, plus the anti-entropy digest fixed point.
// Per-op settlement makes this exact: each operation puts at most one
// message in flight per destination replica, so no cross-thread
// ordering ambiguity survives to the state.
//
// The hammer test then drops determinism and brings REAL concurrency
// (the part a sim can't exercise and the reason the TSan CI leg runs
// this file): many client threads issuing put_direct against
// overlapping keys through run_at, then quiesce + anti-entropy to a
// fixed point, asserting full pairwise replica agreement.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "kv/store.hpp"
#include "net/threaded_transport.hpp"

namespace dvv {
namespace {

constexpr std::size_t kServers = 8;
constexpr std::size_t kShards = 4;

kv::StoreConfig threaded_config() {
  kv::StoreConfig config;
  config.servers = kServers;
  config.transport.kind = net::TransportKind::kThreaded;
  config.transport.threaded.shards = kShards;
  return config;
}

kv::StoreConfig sim_config() {
  kv::StoreConfig config;
  config.servers = kServers;
  config.transport.kind = net::TransportKind::kSim;
  config.transport.sim = net::SimTransportConfig{};  // fault-free
  config.transport.sim.batch_delivery = true;
  return config;
}

/// The deterministic client trace: token round-trips, deliberate
/// concurrent blind writes (siblings), and enough distinct keys that
/// every shard owns coordinators.  Driven identically through both
/// stores; `settle` drains whichever transport backs the store.
void drive_trace(kv::Store& store) {
  const auto settle = [&store] { (void)store.pump_all(); };
  std::map<std::pair<std::uint64_t, std::string>, kv::CausalToken> tokens;
  const auto read_token = [&](std::uint64_t client, const std::string& key) {
    const kv::StoreGetResult g = store.get_direct(key);
    ASSERT_TRUE(g.ok());
    tokens[{client, key}] = g.token;
  };
  for (int round = 0; round < 6; ++round) {
    for (std::uint64_t client = 0; client < 3; ++client) {
      for (int k = 0; k < 5; ++k) {
        const std::string key = "key-" + std::to_string(k);
        const std::string value = "v" + std::to_string(round) + "-" +
                                  std::to_string(client) + "-" +
                                  std::to_string(k);
        // Clients 0 and 1 round-trip tokens (causal chains); client 2
        // writes blind every time (persistent sibling pressure).
        const kv::CausalToken token =
            client == 2 ? kv::CausalToken{} : tokens[{client, key}];
        const kv::StorePutResult p = store.put_direct(
            key, kv::client_actor(client), token, value);
        ASSERT_TRUE(p.ok()) << "put " << key << " round " << round;
        settle();
        if (client != 2) read_token(client, key);
      }
    }
  }
  settle();
}

/// Full-cluster state fingerprint: every replica's encoded state for
/// every key it holds, in deterministic order.
std::map<std::string, std::string> fingerprint(kv::Store& store) {
  std::map<std::string, std::string> out;
  for (kv::ReplicaId r = 0; r < store.servers(); ++r) {
    for (const kv::Key& key : store.keys(r)) {
      const std::optional<std::string> enc = store.encoded_state(r, key);
      if (!enc.has_value()) {
        ADD_FAILURE() << "replica " << r << " lists " << key << " but has no state";
        continue;
      }
      out["r" + std::to_string(r) + "/" + key] = *enc;
    }
  }
  return out;
}

class ThreadedTwinTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ThreadedTwinTest, ByteIdenticalToSimTwin) {
  const std::string mechanism = GetParam();
  const std::unique_ptr<kv::Store> threaded =
      kv::make_store(mechanism, threaded_config());
  ASSERT_NE(threaded, nullptr);
  ASSERT_EQ(threaded->shard_count(), kShards);
  const std::unique_ptr<kv::Store> twin = kv::make_store(mechanism, sim_config());
  ASSERT_NE(twin, nullptr);
  ASSERT_EQ(twin->shard_count(), 1u);

  drive_trace(*threaded);
  drive_trace(*twin);

  const std::map<std::string, std::string> a = fingerprint(*threaded);
  const std::map<std::string, std::string> b = fingerprint(*twin);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [where, bytes] : a) {
    const auto it = b.find(where);
    ASSERT_NE(it, b.end()) << where << " missing from the sim twin";
    EXPECT_EQ(bytes, it->second) << "state diverges at " << where;
  }

  // The anti-entropy digest pass must agree the clusters are at the
  // same fixed point: identical states -> identical digests -> both
  // report nothing to repair.
  const kv::DigestRepairReport ra = threaded->anti_entropy_digest();
  const kv::DigestRepairReport rb = twin->anti_entropy_digest();
  EXPECT_EQ(ra.stats.keys_shipped, rb.stats.keys_shipped);
  EXPECT_EQ(ra.sweeps, rb.sweeps);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, ThreadedTwinTest,
                         ::testing::Values("dvv", "dvvset", "server-vv",
                                           "client-vv", "vve",
                                           "causal-history"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

/// Real concurrency: client threads hammer overlapping keys through
/// run_at-mediated put_direct from OUTSIDE the shard domains, exactly
/// as a bench driver would.  No byte-level oracle here (interleaving
/// is real); the properties are (a) no data race — the TSan leg runs
/// this — (b) no lost write that anti-entropy cannot reconcile, and
/// (c) full replica agreement at the fixed point.
TEST(ThreadedHammerTest, ConcurrentPutsConvergeAfterAntiEntropy) {
  for (const std::string mechanism : {"dvv", "dvvset"}) {
    const std::unique_ptr<kv::Store> store =
        kv::make_store(mechanism, threaded_config());
    ASSERT_NE(store, nullptr);

    constexpr std::size_t kThreads = 4;
    constexpr int kOpsPerThread = 50;
    // gtest assertions are not thread-safe: worker failures are
    // collected in an atomic and asserted on the main thread.
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&store, &failures, t] {
        kv::CausalToken token;  // per-thread causal chain on its hot key
        const std::string hot = "hot-" + std::to_string(t % 2);
        for (int i = 0; i < kOpsPerThread; ++i) {
          const std::string key =
              i % 3 == 0 ? hot : "key-" + std::to_string(i % 7);
          const kv::StorePutResult p = store->put_direct(
              key, kv::client_actor(t),
              i % 3 == 0 ? token : kv::CausalToken{},
              "t" + std::to_string(t) + "-" + std::to_string(i));
          if (!p.ok()) failures.fetch_add(1, std::memory_order_relaxed);
          if (i % 3 == 0) {
            const kv::StoreGetResult g = store->get_direct(hot);
            if (!g.ok()) failures.fetch_add(1, std::memory_order_relaxed);
            token = g.token;
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    ASSERT_EQ(failures.load(), 0) << mechanism << ": worker ops failed";
    (void)store->pump_all();

    // Anti-entropy to a fixed point, then require pairwise agreement of
    // every replica on every key.
    for (int round = 0; round < 8; ++round) {
      const kv::DigestRepairReport report = store->anti_entropy_digest();
      (void)store->pump_all();
      if (report.stats.keys_shipped == 0) break;
    }
    const kv::DigestRepairReport fixed = store->anti_entropy_digest();
    EXPECT_EQ(fixed.stats.keys_shipped, 0u)
        << mechanism << ": not at a fixed point";

    for (kv::ReplicaId r = 0; r < store->servers(); ++r) {
      for (const kv::Key& key : store->keys(r)) {
        const std::optional<std::string> mine = store->encoded_state(r, key);
        for (const kv::ReplicaId peer : store->preference_list(key)) {
          if (peer == r) continue;
          EXPECT_EQ(mine, store->encoded_state(peer, key))
              << mechanism << ": replicas " << r << " and " << peer
              << " disagree on " << key;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dvv
