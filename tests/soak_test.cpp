// Soak test: one long, hostile trace — hot keys, many anonymous
// writers, partial replication, crashes and recoveries, sparse
// anti-entropy — run through the full stack with the oracle auditing
// every operation.  This is the closest the suite gets to "a week of
// production in a box": if any interaction between the ring, the
// replica workflow, failure handling and the DVV clocks is wrong, tens
// of thousands of audited values make it visible.
#include <gtest/gtest.h>

#include "kv/mechanism.hpp"
#include "oracle/audit.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::ClusterConfig;
using dvv::oracle::mirrored_run;
using dvv::workload::WorkloadSpec;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 8;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

WorkloadSpec hostile() {
  WorkloadSpec spec;
  spec.keys = 20;
  spec.zipf_skew = 1.1;  // very hot head keys
  spec.clients = 32;
  spec.operations = 8000;
  spec.read_before_write = 0.65;
  spec.replicate_probability = 0.5;
  spec.anti_entropy_every = 100;
  spec.fail_probability = 0.02;
  spec.recover_probability = 0.05;
  spec.servers = 8;
  spec.value_bytes = 24;
  spec.seed = 0x50a7;
  return spec;
}

TEST(Soak, DvvExactOverEightThousandHostileOperations) {
  auto spec = hostile();
  const auto run = mirrored_run(spec, config(), dvv::kv::DvvMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
  EXPECT_GT(run.report.values_checked, 50'000u)
      << "the audit must have real coverage";
  EXPECT_GT(run.subject_stats.failures, 10u) << "crashes must actually occur";
  EXPECT_EQ(run.subject_stats.puts, 8000u);
}

TEST(Soak, DvvSetExactOverEightThousandHostileOperations) {
  const auto run = mirrored_run(hostile(), config(), dvv::kv::DvvSetMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
}

TEST(Soak, MetadataStaysBoundedForTheWholeRun) {
  const auto run = mirrored_run(hostile(), config(), dvv::kv::DvvMechanism{});
  // Every GET reply's clock-entry count stays bounded by
  // siblings * (R + 1); with the observed sibling levels this caps far
  // below the 32-client population.
  EXPECT_LE(run.subject_stats.get_clock_entries.max(),
            run.subject_stats.get_siblings.max() *
                static_cast<double>(config().replication + 1));
  // And the p99 metadata per reply stays small in absolute terms.
  EXPECT_LT(run.subject_stats.get_metadata_bytes.p99(), 256.0);
}

}  // namespace
