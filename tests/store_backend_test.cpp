// Unit tests for the storage backends (src/store): WAL record framing
// and round trip, the group-commit durability watermark, torn-write
// rejection by CRC, segment rotation, compaction, and replica-level
// crash/recover through both backends.
#include "store/wal_backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "kv/mechanism.hpp"
#include "kv/replica.hpp"
#include "store/mem_backend.hpp"

namespace {

using dvv::store::MemBackend;
using dvv::store::Record;
using dvv::store::RecordType;
using dvv::store::RecoveryResult;
using dvv::store::WalBackend;
using dvv::store::WalConfig;

Record data_record(const std::string& key, const std::string& state) {
  return {RecordType::kData, key, 0, state};
}

TEST(WalBackend, RecoversAppendedRecordsInOrder) {
  WalBackend wal;  // flush_every = 1: write-through
  wal.append(data_record("a", "state-a"));
  wal.append({RecordType::kHint, "b", 7, "hint-b"});
  wal.append(data_record("a", "state-a2"));

  wal.drop_volatile(0);
  const RecoveryResult out = wal.recover();
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.records[0].key, "a");
  EXPECT_EQ(out.records[0].state, "state-a");
  EXPECT_EQ(out.records[1].type, RecordType::kHint);
  EXPECT_EQ(out.records[1].owner, 7u);
  EXPECT_EQ(out.records[2].state, "state-a2");
  EXPECT_EQ(out.stats.records_replayed, 3u);
  EXPECT_EQ(out.stats.torn_records_dropped, 0u);
}

TEST(WalBackend, GroupCommitLosesOnlyTheUnflushedTail) {
  WalConfig config;
  config.flush_every = 0;  // manual flush only
  WalBackend wal(config);
  wal.append(data_record("durable", "d1"));
  wal.flush();
  wal.append(data_record("volatile", "v1"));
  wal.append(data_record("volatile", "v2"));
  EXPECT_EQ(wal.pending_records(), 2u);

  wal.drop_volatile(0);  // crash before the next fsync
  const RecoveryResult out = wal.recover();
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].key, "durable");
  EXPECT_EQ(out.stats.records_lost_unflushed, 2u);
  EXPECT_EQ(out.stats.torn_records_dropped, 0u);
}

TEST(WalBackend, RepeatedCrashesAccumulateRecordedLoss) {
  WalConfig config;
  config.flush_every = 0;
  WalBackend wal(config);
  wal.append(data_record("a", "1"));
  wal.drop_volatile(0);  // first crash: one record lost
  wal.drop_volatile(0);  // crashed again before anyone recovered it
  EXPECT_EQ(wal.recover().stats.records_lost_unflushed, 1u)
      << "a second crash must not erase the first crash's recorded loss";
}

TEST(WalBackend, AutomaticGroupCommitFlushesEveryN) {
  WalConfig config;
  config.flush_every = 3;
  WalBackend wal(config);
  wal.append(data_record("a", "1"));
  wal.append(data_record("b", "2"));
  EXPECT_EQ(wal.pending_records(), 2u) << "batch not full yet";
  wal.append(data_record("c", "3"));
  EXPECT_EQ(wal.pending_records(), 0u) << "third append triggers the fsync";

  wal.append(data_record("d", "4"));  // un-flushed
  wal.drop_volatile(0);
  EXPECT_EQ(wal.recover().records.size(), 3u);
}

TEST(WalBackend, TornWriteIsRejectedByCrc) {
  WalConfig config;
  config.flush_every = 0;
  WalBackend wal(config);
  wal.append(data_record("durable", "d1"));
  wal.flush();
  wal.append(data_record("torn", "this-record-never-fully-hit-the-disk"));

  wal.drop_volatile(5);  // 5 bytes of the frame survive: a torn write
  const RecoveryResult out = wal.recover();
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].key, "durable");
  EXPECT_EQ(out.stats.torn_records_dropped, 1u);

  // The torn bytes were truncated: appends continue on a clean tail.
  wal.append(data_record("after", "a1"));
  wal.flush();
  wal.drop_volatile(0);
  const RecoveryResult again = wal.recover();
  ASSERT_EQ(again.records.size(), 2u);
  EXPECT_EQ(again.records[1].key, "after");
  EXPECT_EQ(again.stats.torn_records_dropped, 0u);
}

TEST(WalBackend, RotationSealsSegmentsAndCompactionDropsObsoleteRecords) {
  WalConfig config;
  config.segment_bytes = 256;
  config.compact_min_segments = 3;
  config.compact_min_garbage = 0.5;
  WalBackend wal(config);

  // Overwrite two keys many times: almost everything becomes garbage.
  for (int i = 0; i < 200; ++i) {
    wal.append(data_record(i % 2 == 0 ? "x" : "y",
                           "state-" + std::to_string(i) + std::string(16, '.')));
  }
  EXPECT_GT(wal.stats().segments_sealed, 3u);
  EXPECT_GT(wal.stats().compactions, 0u);
  EXPECT_GT(wal.stats().compaction_records_dropped, 0u);
  EXPECT_LT(wal.log_bytes(), 200u * 16u) << "compaction must shrink the log";

  wal.drop_volatile(0);
  const RecoveryResult out = wal.recover();
  // Replay is last-record-wins: both keys end at their final state.
  std::string x, y;
  for (const Record& r : out.records) (r.key == "x" ? x : y) = r.state;
  EXPECT_EQ(x.substr(0, 9), "state-198");
  EXPECT_EQ(y.substr(0, 9), "state-199");
}

TEST(WalBackend, CompactionDropsDeliveredHints) {
  WalConfig config;
  config.segment_bytes = 64;
  config.compact_min_segments = 2;
  config.compact_min_garbage = 0.1;
  WalBackend wal(config);
  wal.append({RecordType::kHint, "k", 3, std::string(40, 'h')});
  wal.append({RecordType::kHintDrop, "k", 3, ""});
  for (int i = 0; i < 20; ++i) {
    wal.append(data_record("pad", "p" + std::string(40, '.')));
  }
  ASSERT_GT(wal.stats().compactions, 0u);
  wal.drop_volatile(0);
  for (const Record& r : wal.recover().records) {
    EXPECT_NE(r.type, RecordType::kHint) << "delivered hint must compact away";
  }
}

TEST(MemBackend, CrashIsTotalLoss) {
  MemBackend mem;
  mem.append(data_record("k", "v"));
  mem.flush();
  mem.drop_volatile(0);
  EXPECT_TRUE(mem.recover().records.empty());
  EXPECT_EQ(mem.log_bytes(), 0u);
  EXPECT_EQ(mem.appends(), 1u);
}

// ---- replica-level round trip ---------------------------------------------

using dvv::kv::DvvMechanism;
using dvv::kv::Replica;

std::unique_ptr<WalBackend> wal_backend() {
  return std::make_unique<WalBackend>(WalConfig{});
}

TEST(ReplicaStorage, WalCrashRecoverRestoresDataAndHints) {
  const DvvMechanism mech;
  Replica<DvvMechanism> replica(0, wal_backend());
  Replica<DvvMechanism> donor(1);

  replica.put(mech, "k1", 0, dvv::kv::client_actor(0), {}, "v1");
  replica.put(mech, "k2", 0, dvv::kv::client_actor(0), {}, "v2");
  donor.put(mech, "h", 1, dvv::kv::client_actor(1), {}, "hinted");
  replica.stash_hint(mech, /*owner=*/4, "h", *donor.find("h"));

  dvv::codec::Writer before_k1, before_hint;
  dvv::codec::encode(before_k1, *replica.find("k1"));
  dvv::codec::encode(before_hint, *replica.find_hint(4, "h"));

  replica.crash();
  EXPECT_FALSE(replica.alive());
  EXPECT_EQ(replica.key_count(), 0u);
  EXPECT_EQ(replica.hinted_count(), 0u);

  const auto stats = replica.recover();
  EXPECT_TRUE(replica.alive());
  EXPECT_EQ(stats.records_replayed, 3u);
  EXPECT_EQ(replica.key_count(), 2u);
  ASSERT_NE(replica.find("k1"), nullptr);
  ASSERT_NE(replica.find_hint(4, "h"), nullptr);

  dvv::codec::Writer after_k1, after_hint;
  dvv::codec::encode(after_k1, *replica.find("k1"));
  dvv::codec::encode(after_hint, *replica.find_hint(4, "h"));
  EXPECT_EQ(before_k1.buffer(), after_k1.buffer()) << "byte-identical replay";
  EXPECT_EQ(before_hint.buffer(), after_hint.buffer());
}

TEST(ReplicaStorage, DeliveredHintDoesNotResurrectAcrossCrash) {
  const DvvMechanism mech;
  Replica<DvvMechanism> holder(0, wal_backend());
  Replica<DvvMechanism> owner(4);
  Replica<DvvMechanism> donor(1);
  donor.put(mech, "h", 1, dvv::kv::client_actor(1), {}, "hinted");
  holder.stash_hint(mech, 4, "h", *donor.find("h"));

  auto lookup = [&](dvv::kv::ReplicaId) -> Replica<DvvMechanism>& { return owner; };
  EXPECT_EQ(holder.deliver_hints(mech, lookup), 1u);
  EXPECT_EQ(holder.hinted_count(), 0u);

  holder.crash();
  (void)holder.recover();
  EXPECT_EQ(holder.hinted_count(), 0u)
      << "kHintDrop must keep a delivered hint from replaying";
}

TEST(ReplicaStorage, MemCrashLosesEverything) {
  const DvvMechanism mech;
  Replica<DvvMechanism> replica(0, std::make_unique<MemBackend>());
  replica.put(mech, "k", 0, dvv::kv::client_actor(0), {}, "v");
  replica.crash();
  (void)replica.recover();
  EXPECT_TRUE(replica.alive());
  EXPECT_EQ(replica.key_count(), 0u);
}

}  // namespace
