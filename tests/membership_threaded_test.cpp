// Membership transitions under REAL concurrency — the TSan leg's
// membership coverage.
//
// Client threads hammer put_direct / get_direct (the run_at-mediated
// facade path a bench driver or dvvd uses) while the MAIN thread —
// playing dvvd's admin thread — executes a join/leave storm, each
// transition a world-stopped quiescent point plus an inline rebalance.
// The facade's routing lock (kv/store.cpp) serializes the client
// threads' coordinator resolution against the control plane; the
// world-stop serializes the shard threads.  TSan is the referee for
// both claims.
//
// No byte-level oracle here (the interleaving is real); the properties
// are (a) no data race, (b) every client op completes — a transition
// may briefly block traffic but never fails it, and (c) after the
// storm the cluster reaches an anti-entropy fixed point with every
// current owner of every key in byte agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <iterator>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "kv/store.hpp"
#include "net/threaded_transport.hpp"

namespace dvv {
namespace {

constexpr std::size_t kSeedServers = 6;
constexpr std::size_t kCapacity = 8;
constexpr std::size_t kShards = 4;
constexpr std::size_t kThreads = 4;
constexpr int kOpsPerThread = 120;

kv::StoreConfig elastic_threaded_config() {
  kv::StoreConfig config;
  config.servers = kSeedServers;  // seed ring {0..5}
  config.capacity = kCapacity;    // slots 6, 7 provisioned for joins
  config.replication = 3;
  config.transport.kind = net::TransportKind::kThreaded;
  config.transport.threaded.shards = kShards;
  return config;
}

TEST(MembershipThreadedTest, JoinLeaveStormUnderConcurrentClientTraffic) {
  for (const std::string mechanism : {"dvv", "dvvset"}) {
    const std::unique_ptr<kv::Store> store =
        kv::make_store(mechanism, elastic_threaded_config());
    ASSERT_NE(store, nullptr);
    ASSERT_EQ(store->shard_count(), kShards);

    // gtest assertions are not thread-safe: worker failures are
    // collected in an atomic and asserted on the main thread.  The op
    // counter paces the storm so every transition genuinely overlaps
    // in-flight client traffic.
    std::atomic<int> failures{0};
    std::atomic<int> ops_done{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&store, &failures, &ops_done, t] {
        kv::CausalToken token;  // per-thread causal chain on its hot key
        const std::string hot = "hot-" + std::to_string(t % 2);
        for (int i = 0; i < kOpsPerThread; ++i) {
          const std::string key =
              i % 3 == 0 ? hot : "key-" + std::to_string(i % 7);
          const kv::StorePutResult p = store->put_direct(
              key, kv::client_actor(t),
              i % 3 == 0 ? token : kv::CausalToken{},
              "t" + std::to_string(t) + "-" + std::to_string(i));
          if (!p.ok()) failures.fetch_add(1, std::memory_order_relaxed);
          if (i % 3 == 0) {
            const kv::StoreGetResult g = store->get_direct(hot);
            if (!g.ok()) failures.fetch_add(1, std::memory_order_relaxed);
            token = g.token;
          }
          ops_done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    // The storm, from the admin role: grow to full capacity, shrink,
    // and REJOIN a departed slot (the incarnation-bump path) — all
    // while the clients above are mid-flight.  Each step waits for
    // more client progress so the transitions spread across the run.
    const auto wait_for_ops = [&ops_done](int target) {
      while (ops_done.load(std::memory_order_relaxed) < target) {
        std::this_thread::yield();
      }
    };
    const int total = static_cast<int>(kThreads) * kOpsPerThread;
    struct Step {
      int after;  ///< client ops completed before this transition
      bool join;
      kv::ReplicaId node;
    };
    const Step storm[] = {
        {total / 12, true, 6},     {total / 6, true, 7},
        {total / 4, false, 0},     {total / 3, false, 1},
        {total / 2, false, 2},     {2 * total / 3, true, 2},
    };
    std::uint64_t keys_shipped = 0;
    for (const Step& step : storm) {
      wait_for_ops(step.after);
      const bool ok =
          step.join ? store->join_node(step.node) : store->leave_node(step.node);
      ASSERT_TRUE(ok) << "transition precondition broken at node "
                      << step.node;
      keys_shipped += store->complete_rebalance().totals.keys_shipped;
      ASSERT_FALSE(store->rebalancing());
    }

    for (std::thread& c : clients) c.join();
    ASSERT_EQ(failures.load(), 0) << mechanism << ": worker ops failed";
    EXPECT_EQ(store->ring_epoch(), std::size(storm));
    EXPECT_EQ(store->members(),
              (std::vector<kv::ReplicaId>{2, 3, 4, 5, 6, 7}));
    EXPECT_GT(keys_shipped, 0u) << "the storm's rebalances moved nothing";
    (void)store->pump_all();

    // Anti-entropy to a fixed point, then require byte agreement among
    // the CURRENT owners of every key.  Replicas outside a key's
    // preference list may legitimately hold stale superseded copies —
    // transfers move data, they never delete it.
    for (int round = 0; round < 8; ++round) {
      const kv::DigestRepairReport report = store->anti_entropy_digest();
      (void)store->pump_all();
      if (report.stats.keys_shipped == 0) break;
    }
    const kv::DigestRepairReport fixed = store->anti_entropy_digest();
    EXPECT_EQ(fixed.stats.keys_shipped, 0u)
        << mechanism << ": not at a fixed point";

    std::set<kv::Key> all_keys;
    for (kv::ReplicaId r = 0; r < store->servers(); ++r) {
      for (const kv::Key& key : store->keys(r)) all_keys.insert(key);
    }
    EXPECT_FALSE(all_keys.empty());
    for (const kv::Key& key : all_keys) {
      const std::vector<kv::ReplicaId> owners = store->preference_list(key);
      const std::optional<std::string> first =
          store->encoded_state(owners[0], key);
      EXPECT_TRUE(first.has_value())
          << mechanism << ": owner " << owners[0] << " lost " << key;
      for (const kv::ReplicaId peer : owners) {
        EXPECT_EQ(first, store->encoded_state(peer, key))
            << mechanism << ": owners " << owners[0] << " and " << peer
            << " disagree on " << key;
      }
    }
  }
}

}  // namespace
}  // namespace dvv
