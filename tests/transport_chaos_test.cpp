// Network-fault property suite for the message layer (src/net).
//
// Claim 1 (sound mechanisms): under seeded partition/heal + message
// drop + duplication + reorder chaos on a manually-pumped SimTransport,
// once the network quiesces (heal, zero fault rates, drain) the digest
// anti-entropy pass drives the cluster to a fixed point BYTE-IDENTICAL
// to an unfaulted twin that ran the same workload on the inline
// transport.  The choreography keeps client decisions network-
// independent (each key's slot-0 coordinator serves every read and
// coordinates every write, and nobody pauses), so every byte of
// divergence is attributable to the transport faults — and sound
// causality plus anti-entropy must erase all of it.
//
// Claim 2 (unsound mechanisms): the same network weather, replayed in
// lockstep against the causal-history oracle through the new
// kPartition/kHeal trace events, makes the Fig. 1b server-VV scheme
// lose updates while DVV stays exact — fault injection that cannot
// even be EXPRESSED without a real message layer.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "oracle/audit.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::net::SimTransport;
using dvv::util::Rng;

constexpr std::size_t kServers = 6;
constexpr std::size_t kKeys = 24;
constexpr std::size_t kClients = 5;
constexpr std::size_t kOps = 500;

ClusterConfig chaos_config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.servers = kServers;
  cfg.replication = 3;
  cfg.vnodes = 32;
  cfg.transport.kind = dvv::net::TransportKind::kSim;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  cfg.transport.sim.seed = seed ^ 0xfa417ULL;
  cfg.transport.sim.drop_probability = 0.10;
  cfg.transport.sim.duplicate_probability = 0.15;
  cfg.transport.sim.reorder_window = 4;
  cfg.transport.sim.auto_settle = false;  // real in-flight windows
  return cfg;
}

ClusterConfig twin_config() {
  ClusterConfig cfg;
  cfg.servers = kServers;
  cfg.replication = 3;
  cfg.vnodes = 32;
  cfg.transport.kind = dvv::net::TransportKind::kInline;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  return cfg;
}

/// The seeded workload: read-modify-write and blind writes, every key
/// coordinated (and read) at its slot-0 preference replica so the
/// clients' causal contexts cannot depend on replication weather.
/// `chaos` additionally pumps, partitions, heals, and fires random
/// background sync sessions between the operations.
template <typename M>
void run_workload(Cluster<M>& cluster, std::uint64_t seed, bool chaos) {
  Rng rng(seed);
  Rng net_rng(seed ^ 0x9e37ULL);  // chaos-only stream, shared schedule
  using Context = typename M::Context;
  std::map<std::pair<std::size_t, Key>, Context> contexts;

  for (std::size_t op = 0; op < kOps; ++op) {
    // The network-weather schedule draws from its own stream on both
    // sides (decisions identical; the twin just ignores them).
    const bool do_partition = net_rng.chance(0.04);
    const bool do_heal = net_rng.chance(0.10);
    const bool do_pump = net_rng.chance(0.50);
    const bool do_sync = net_rng.chance(0.08);
    const auto sync_a = static_cast<ReplicaId>(net_rng.index(kServers));
    auto sync_b = static_cast<ReplicaId>(net_rng.index(kServers - 1));
    if (sync_b >= sync_a) ++sync_b;
    const auto groups = dvv::net::random_split<ReplicaId>(net_rng, kServers);

    if (chaos) {
      if (do_partition && !cluster.transport().partitioned()) {
        cluster.partition(groups, "chaos");
      } else if (do_heal && cluster.transport().partitioned()) {
        cluster.heal();
      }
      if (do_pump) cluster.pump();
      if (do_sync) (void)cluster.request_sync(sync_a, sync_b);
    }

    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const ReplicaId coordinator = cluster.preference_list(key)[0];
    const std::size_t client = rng.index(kClients);
    const bool rmw = rng.chance(0.7);
    Context ctx{};
    if (rmw) {
      // Read at the coordinator itself: the context reflects exactly
      // the coordinator's state, which no transport fault can touch.
      ctx = cluster.get(key, coordinator).context;
      contexts[{client, key}] = ctx;
    }
    cluster.put(key, coordinator, dvv::kv::client_actor(client), ctx,
                "w" + std::to_string(op), cluster.preference_list(key));
  }
}

/// Quiesce: zero fault rates, heal, drain, then drive the digest pass
/// to its fixed point.
template <typename M>
void quiesce(Cluster<M>& cluster) {
  auto* sim = dynamic_cast<SimTransport*>(&cluster.transport());
  if (sim != nullptr) sim->set_fault_rates(0.0, 0.0, 0);
  cluster.heal();
  cluster.pump_all();
  cluster.anti_entropy_digest();
}

/// Byte-level snapshot of every replica's every key.
template <typename M>
std::map<std::pair<ReplicaId, Key>, std::string> full_state(Cluster<M>& cluster) {
  std::map<std::pair<ReplicaId, Key>, std::string> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      dvv::codec::Writer w;
      dvv::codec::encode(w, *cluster.replica(r).find(key));
      const auto* p = reinterpret_cast<const char*>(w.buffer().data());
      out.emplace(std::make_pair(r, key), std::string(p, w.size()));
    }
  }
  return out;
}

template <typename M>
class TransportChaosTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(TransportChaosTest, AllMechanisms);

TYPED_TEST(TransportChaosTest, QuiescedFixedPointMatchesUnfaultedTwin) {
  for (const std::uint64_t seed : {7ULL, 123ULL, 20120716ULL}) {
    Cluster<TypeParam> faulted(chaos_config(seed), {});
    Cluster<TypeParam> twin(twin_config(), {});
    run_workload(faulted, seed, /*chaos=*/true);
    run_workload(twin, seed, /*chaos=*/false);

    // The chaos must have actually happened.
    const auto& stats = faulted.transport().stats();
    ASSERT_GT(stats.dropped, 0u) << "seed " << seed;
    ASSERT_GT(stats.duplicated, 0u);
    ASSERT_GT(stats.partition_dropped, 0u) << "no message died on a cut link";

    quiesce(faulted);
    quiesce(twin);

    // Sound mechanisms: same fixed point, byte for byte — drops,
    // duplicates, reorderings and partitions left no trace the clocks
    // could not repair.  Server-VV is EXEMPT, and that is the paper's
    // point: it falsely orders racing clients, so which racing sibling
    // survives depends on delivery order and the faulted run genuinely
    // ends elsewhere (the oracle test below pins the lost updates).
    constexpr bool kSoundUnderChaos =
        !std::is_same_v<TypeParam, dvv::kv::ServerVvMechanism>;
    if constexpr (kSoundUnderChaos) {
      ASSERT_EQ(full_state(faulted), full_state(twin))
          << "chaos left divergence after quiesce (seed " << seed << ")";
    }

    // Every mechanism, sound or not, must still converge INTERNALLY:
    // after repair each key reads byte-identically from every replica
    // in its preference list.
    const auto snapshot = full_state(faulted);
    for (const auto& [where, bytes] : snapshot) {
      const auto& [replica, key] = where;
      for (const ReplicaId peer : faulted.preference_list(key)) {
        const auto it = snapshot.find(std::make_pair(peer, key));
        if (it == snapshot.end()) continue;
        EXPECT_EQ(bytes, it->second) << "key " << key << " differs between "
                                     << replica << " and " << peer
                                     << " (seed " << seed << ")";
      }
    }

    // And it is a fixed point: nothing ships on a second pass.
    EXPECT_EQ(faulted.anti_entropy_digest().stats.keys_shipped, 0u);
    EXPECT_EQ(faulted.anti_entropy(), 0u);
  }
}

// ---- the oracle flags the unsound mechanisms under the same weather --------

dvv::workload::WorkloadSpec chaos_spec(std::uint64_t seed) {
  dvv::workload::WorkloadSpec spec;
  spec.keys = 8;
  spec.zipf_skew = 0.99;
  spec.clients = 12;
  spec.operations = 600;
  spec.read_before_write = 0.7;
  spec.replicate_probability = 0.8;
  spec.anti_entropy_every = 50;
  spec.fail_probability = 0.04;
  spec.recover_probability = 0.10;
  spec.partition_probability = 0.05;
  spec.heal_probability = 0.15;
  spec.servers = kServers;
  spec.seed = seed;
  return spec;
}

TEST(TransportChaosOracle, TraceCarriesPartitionEvents) {
  const auto trace = dvv::workload::generate_trace(chaos_spec(5), 3);
  std::size_t partitions = 0;
  std::size_t heals = 0;
  bool open = false;
  for (const auto& op : trace.ops) {
    if (op.kind == dvv::workload::TraceOp::Kind::kPartition) {
      EXPECT_FALSE(open) << "at most one active partition";
      EXPECT_EQ(op.groups.size(), 2u);
      std::size_t named = 0;
      for (const auto& g : op.groups) named += g.size();
      EXPECT_EQ(named, kServers) << "a split names every server";
      open = true;
      ++partitions;
    } else if (op.kind == dvv::workload::TraceOp::Kind::kHeal) {
      EXPECT_TRUE(open);
      open = false;
      ++heals;
    }
  }
  EXPECT_GT(partitions, 0u);
  EXPECT_EQ(partitions, heals) << "trace ends healed";
  EXPECT_FALSE(open);
}

TEST(TransportChaosOracle, DvvStaysExactAndServerVvLosesUpdates) {
  std::uint64_t server_vv_anomalies = 0;
  for (const std::uint64_t seed : {3ULL, 11ULL, 77ULL}) {
    const auto spec = chaos_spec(seed);
    ClusterConfig cfg = chaos_config(seed);
    cfg.transport.sim.auto_settle = true;  // lockstep replay settles per op

    const auto dvv_run =
        dvv::oracle::mirrored_run(spec, cfg, dvv::kv::DvvMechanism{});
    EXPECT_TRUE(dvv_run.report.exact())
        << "DVV must track causality exactly under partition/drop/dup/"
        << "reorder chaos (seed " << seed << "): lost "
        << dvv_run.report.lost_updates() << ", false "
        << dvv_run.report.false_siblings();

    const auto dvvset_run =
        dvv::oracle::mirrored_run(spec, cfg, dvv::kv::DvvSetMechanism{});
    EXPECT_TRUE(dvvset_run.report.exact()) << "seed " << seed;

    const auto vv_run =
        dvv::oracle::mirrored_run(spec, cfg, dvv::kv::ServerVvMechanism{});
    server_vv_anomalies += vv_run.report.lost_updates();
  }
  EXPECT_GT(server_vv_anomalies, 0u)
      << "the Fig. 1b scheme must lose racing updates under network chaos";
}

}  // namespace
