// Tests for the type-erased kv::Store facade and kv::Session
// (src/kv/store, src/kv/session): runtime mechanism selection, the
// facade-vs-template equivalence proof, opaque-token round-trips at
// the public API layer, token-misuse hardening, and the
// RmwOnUnavailableReadDoesNotWrite regression — the api_redesign
// analogue of transport_equivalence_test.
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "kv/session.hpp"
#include "kv/token.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::CausalToken;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::MechanismId;
using dvv::kv::ReplicaId;
using dvv::kv::Session;
using dvv::kv::Store;
using dvv::kv::StoreConfig;
using dvv::kv::StoreStatus;
using dvv::workload::ReplayStats;
using dvv::workload::Trace;
using dvv::workload::WorkloadSpec;

constexpr std::size_t kServers = 5;

StoreConfig store_config() {
  StoreConfig config;
  config.servers = kServers;
  config.replication = 3;
  config.vnodes = 32;
  return config;
}

ClusterConfig cluster_config() {
  ClusterConfig config;
  config.servers = kServers;
  config.replication = 3;
  config.vnodes = 32;
  return config;
}

/// Full byte-level snapshot of a facade store: every replica's every
/// key, codec-encoded.
std::map<std::pair<ReplicaId, Key>, std::string> full_state(const Store& store) {
  std::map<std::pair<ReplicaId, Key>, std::string> out;
  for (ReplicaId r = 0; r < store.servers(); ++r) {
    for (const Key& key : store.keys(r)) {
      const auto bytes = store.encoded_state(r, key);
      if (!bytes.has_value()) {
        ADD_FAILURE() << "listed key " << key << " has no state at " << r;
        continue;
      }
      out.emplace(std::make_pair(r, key), *bytes);
    }
  }
  return out;
}

/// Same snapshot for a templated cluster.
template <typename M>
std::map<std::pair<ReplicaId, Key>, std::string> full_state(Cluster<M>& cluster) {
  std::map<std::pair<ReplicaId, Key>, std::string> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      out.emplace(std::make_pair(r, key),
                  dvv::kv::Replica<M>::encode_state(*cluster.replica(r).find(key)));
    }
  }
  return out;
}

/// The replay measurements both drivers must agree on, field by field.
void expect_same_stats(const ReplayStats& a, const ReplayStats& b,
                       const char* label) {
  EXPECT_EQ(a.gets, b.gets) << label;
  EXPECT_EQ(a.puts, b.puts) << label;
  EXPECT_EQ(a.anti_entropy_rounds, b.anti_entropy_rounds) << label;
  EXPECT_EQ(a.failures, b.failures) << label;
  EXPECT_EQ(a.recoveries, b.recoveries) << label;
  EXPECT_EQ(a.partitions, b.partitions) << label;
  EXPECT_EQ(a.heals, b.heals) << label;
  EXPECT_EQ(a.ticks, b.ticks) << label;
  EXPECT_EQ(a.op_timeouts, b.op_timeouts) << label;
  EXPECT_EQ(a.max_in_flight, b.max_in_flight) << label;
  EXPECT_EQ(a.get_metadata_bytes.count(), b.get_metadata_bytes.count()) << label;
  EXPECT_DOUBLE_EQ(a.get_metadata_bytes.mean(), b.get_metadata_bytes.mean())
      << label;
  EXPECT_DOUBLE_EQ(a.get_total_bytes.mean(), b.get_total_bytes.mean()) << label;
  EXPECT_DOUBLE_EQ(a.get_siblings.mean(), b.get_siblings.mean()) << label;
  EXPECT_DOUBLE_EQ(a.get_clock_entries.mean(), b.get_clock_entries.mean())
      << label;
  EXPECT_EQ(a.put_replication_bytes.count(), b.put_replication_bytes.count())
      << label;
  EXPECT_DOUBLE_EQ(a.put_replication_bytes.mean(), b.put_replication_bytes.mean())
      << label;
  EXPECT_EQ(a.final_keys, b.final_keys) << label;
  EXPECT_EQ(a.final_siblings, b.final_siblings) << label;
  EXPECT_EQ(a.final_clock_entries, b.final_clock_entries) << label;
  EXPECT_EQ(a.final_metadata_bytes, b.final_metadata_bytes) << label;
  EXPECT_EQ(a.final_total_bytes, b.final_total_bytes) << label;
}

/// Chaotic sync-path workload: partial replication, blind writes,
/// fail/recover, hinted handoff, periodic anti-entropy.
WorkloadSpec chaotic_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.keys = 24;
  spec.clients = 6;
  spec.operations = 400;
  spec.read_before_write = 0.85;
  spec.replicate_probability = 0.6;
  spec.anti_entropy_every = 60;
  spec.value_bytes = 12;
  spec.servers = kServers;
  spec.fail_probability = 0.02;
  spec.recover_probability = 0.05;
  spec.hinted_handoff = true;
  spec.seed = seed;
  return spec;
}

/// Asynchronous-quorum workload with partitions: in-flight coordinated
/// reads/writes, tick pumps, deadline expiries.
WorkloadSpec async_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.keys = 16;
  spec.clients = 6;
  spec.operations = 300;
  spec.read_before_write = 0.8;
  spec.replicate_probability = 0.8;
  spec.value_bytes = 8;
  spec.servers = kServers;
  spec.partition_probability = 0.02;
  spec.heal_probability = 0.2;
  spec.async_quorum = true;
  spec.read_quorum = 2;
  spec.write_quorum = 2;
  spec.deadline_ticks = 12;
  spec.seed = seed;
  return spec;
}

// ---- make_store ------------------------------------------------------------

TEST(MakeStore, AllSixMechanismsConstructByName) {
  for (const std::string& name : dvv::kv::known_mechanisms()) {
    const auto store = dvv::kv::make_store(name, store_config());
    ASSERT_NE(store, nullptr) << name;
    EXPECT_EQ(store->mechanism_name(), name);
    EXPECT_EQ(dvv::kv::to_string(store->mechanism_id()), name);
    EXPECT_EQ(store->servers(), kServers);
  }
}

TEST(MakeStore, UnknownMechanismIsAnInspectableError) {
  EXPECT_EQ(dvv::kv::make_store("paxos", store_config()), nullptr);
  EXPECT_EQ(dvv::kv::make_store("DVV", store_config()), nullptr) << "names are exact";
}

TEST(MakeStore, EmptyNameSelectsProcessDefault) {
  const auto store = dvv::kv::make_store(store_config());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->mechanism_name(), dvv::kv::default_mechanism_name());
}

TEST(MakeStore, DvvMechanismEnvSelectsDefault) {
  const char* before = std::getenv("DVV_MECHANISM");
  const std::string saved = before == nullptr ? "" : before;

  ::setenv("DVV_MECHANISM", "dvvset", 1);
  EXPECT_EQ(dvv::kv::default_mechanism_name(), "dvvset");
  EXPECT_EQ(dvv::kv::make_store(store_config())->mechanism_name(), "dvvset");
  ::setenv("DVV_MECHANISM", "no-such-mechanism", 1);
  EXPECT_DEATH(dvv::kv::default_mechanism_name(), "not a known mechanism")
      << "a typo in the env (e.g. a CI matrix leg) must fail loudly, not "
         "silently run every test against the default and pass";

  if (before == nullptr) {
    ::unsetenv("DVV_MECHANISM");
  } else {
    ::setenv("DVV_MECHANISM", saved.c_str(), 1);
  }
}

// ---- facade-vs-template equivalence (the tentpole proof) -------------------

template <typename M>
class StoreEquivalenceTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(StoreEquivalenceTest, AllMechanisms);

/// Runs `trace` through the templated Replayer on a Cluster<M> and
/// through the facade StoreReplayer on a make_store(M::kName) twin,
/// then asserts results, receipts and every replica's every key are
/// byte-identical — including after a further legacy AND digest
/// anti-entropy fixed point on each side.  Both drivers make identical
/// decisions in identical order, so both transports (inline or the
/// DVV_TRANSPORT=chaos SimTransport) consume identical fault streams.
template <typename M>
void prove_equivalence(const Trace& trace, std::uint64_t seed) {
  Cluster<M> cluster(cluster_config(), {});
  const auto store = dvv::kv::make_store(std::string(M::kName), store_config());
  ASSERT_NE(store, nullptr);

  const ReplayStats direct = dvv::workload::replay(cluster, trace);
  const ReplayStats facade = dvv::workload::replay(*store, trace);

  const std::string label = std::string(M::kName) + " seed " + std::to_string(seed);
  expect_same_stats(direct, facade, label.c_str());
  EXPECT_EQ(full_state(cluster), full_state(*store))
      << label << ": replica states diverge after replay";

  // Drive both twins to their repair fixed points: the facade must not
  // perturb either anti-entropy pass.
  cluster.anti_entropy();
  store->anti_entropy();
  EXPECT_EQ(full_state(cluster), full_state(*store))
      << label << ": legacy anti-entropy fixed points diverge";

  const auto direct_report = cluster.anti_entropy_digest();
  const auto facade_report = store->anti_entropy_digest();
  EXPECT_EQ(direct_report.stats.keys_shipped, facade_report.stats.keys_shipped)
      << label;
  EXPECT_EQ(direct_report.stats.wire_bytes, facade_report.stats.wire_bytes)
      << label;
  EXPECT_EQ(full_state(cluster), full_state(*store))
      << label << ": digest anti-entropy fixed points diverge";
}

TYPED_TEST(StoreEquivalenceTest, ChaoticWorkloadIsByteIdenticalToTemplatedTwin) {
  for (const std::uint64_t seed : {3ULL, 77ULL, 20120716ULL}) {
    const Trace trace = dvv::workload::generate_trace(chaotic_spec(seed), 3);
    prove_equivalence<TypeParam>(trace, seed);
  }
}

TYPED_TEST(StoreEquivalenceTest, AsyncQuorumWorkloadIsByteIdenticalToTemplatedTwin) {
  for (const std::uint64_t seed : {5ULL, 1234ULL}) {
    const Trace trace = dvv::workload::generate_trace(async_spec(seed), 3);
    prove_equivalence<TypeParam>(trace, seed);
  }
}

/// Token round-trip property at the public layer: every token a GET
/// hands out across a seeded chaotic workload strictly decodes for its
/// own mechanism and re-encodes to the exact same bytes (one canonical
/// byte representation per context).
TYPED_TEST(StoreEquivalenceTest, EveryIssuedTokenRoundTripsByteIdentically) {
  using Context = typename TypeParam::Context;
  const auto store = dvv::kv::make_store(std::string(TypeParam::kName),
                                         store_config());
  ASSERT_NE(store, nullptr);
  const auto id = dvv::kv::mechanism_id_of(TypeParam::kName);
  ASSERT_TRUE(id.has_value());

  const Trace trace = dvv::workload::generate_trace(chaotic_spec(9), 3);
  (void)dvv::workload::replay(*store, trace);

  std::size_t tokens_checked = 0;
  for (ReplicaId r = 0; r < store->servers(); ++r) {
    if (!store->alive(r)) continue;
    for (const Key& key : store->keys(r)) {
      const auto result = store->get(key, r);
      if (!result.ok()) continue;
      Context ctx;
      ASSERT_TRUE(dvv::kv::decode_token(result.token, *id, ctx))
          << "own token must strictly decode (key " << key << ")";
      EXPECT_EQ(dvv::kv::encode_token(*id, ctx), result.token)
          << "decode -> encode must reproduce the token byte-for-byte";
      ++tokens_checked;
    }
  }
  EXPECT_GT(tokens_checked, 50u) << "the property must have real coverage";
}

// ---- token misuse hardening (satellite) ------------------------------------

/// A store with one written key, plus the valid token its GET returned.
struct Seeded {
  std::unique_ptr<Store> store;
  Key key = "k";
  CausalToken token;
};

Seeded seeded_store(const std::string& mechanism) {
  Seeded out;
  out.store = dvv::kv::make_store(mechanism, store_config());
  EXPECT_NE(out.store, nullptr);
  EXPECT_TRUE(
      out.store->put(out.key, dvv::kv::client_actor(0), CausalToken{}, "v1").ok());
  const auto got = out.store->get(out.key);
  EXPECT_TRUE(got.ok());
  out.token = got.token;
  EXPECT_FALSE(out.token.empty());
  return out;
}

/// Asserts `store` rejects `token` as kBadToken on every write path
/// without mutating ANY replica state or starting any request.
void expect_rejected_without_mutation(Store& store, const Key& key,
                                      const CausalToken& token) {
  const auto before = full_state(store);
  const auto hinted_before = store.hinted_count();

  const auto put = store.put(key, dvv::kv::client_actor(7), token, "evil");
  EXPECT_EQ(put.status, StoreStatus::kBadToken);
  EXPECT_EQ(put.receipt.targets, 0u) << "no write happened, so no receipt";

  const auto put_at = store.put_at(key, 0, dvv::kv::client_actor(7), token,
                                   "evil", store.preference_list(key));
  EXPECT_EQ(put_at.status, StoreStatus::kBadToken);

  const auto handoff =
      store.put_with_handoff(key, 0, dvv::kv::client_actor(7), token, "evil");
  EXPECT_EQ(handoff.status, StoreStatus::kBadToken);

  const auto begun =
      store.begin_write(key, 0, dvv::kv::client_actor(7), token, "evil",
                        store.preference_list(key));
  EXPECT_EQ(begun.status, StoreStatus::kBadToken);
  EXPECT_EQ(begun.id, dvv::kv::kInvalidRequestId)
      << "a rejected begin must not hand back an id that could alias a "
         "real request (the engine's first id is 0)";
  EXPECT_FALSE(store.request_open(begun.id));
  EXPECT_EQ(store.requests_in_flight(), 0u)
      << "a rejected begin_write must not open a request";

  EXPECT_EQ(full_state(store), before)
      << "a rejected token must leave every replica byte-identical";
  EXPECT_EQ(store.hinted_count(), hinted_before);
}

TEST(TokenMisuse, CrossMechanismTokenIsRejectedNotReinterpreted) {
  Seeded dvv = seeded_store("dvv");
  Seeded vve = seeded_store("vve");
  // A DVV token fed to a VVE store (and vice versa): same key, same
  // byte-string discipline, different mechanism tag.
  expect_rejected_without_mutation(*vve.store, vve.key, dvv.token);
  expect_rejected_without_mutation(*dvv.store, dvv.key, vve.token);
  // Sharing the Context TYPE does not help: a dvv token is not a
  // server-vv token even though both contexts are VersionVectors.
  Seeded svv = seeded_store("server-vv");
  expect_rejected_without_mutation(*svv.store, svv.key, dvv.token);
}

TEST(TokenMisuse, BitFlippedTokenIsRejected) {
  Seeded s = seeded_store("dvv");
  for (std::size_t i = 0; i < s.token.size(); ++i) {
    std::string bytes = s.token.bytes();
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    expect_rejected_without_mutation(*s.store, s.key,
                                     CausalToken::from_bytes(std::move(bytes)));
  }
}

TEST(TokenMisuse, TruncatedTokenIsRejected) {
  Seeded s = seeded_store("dvvset");
  // Every proper nonempty prefix must be rejected.  (The zero-length
  // truncation IS the empty token — a deliberate blind write, the
  // Riak absent-vclock semantics — so it starts at 1.)
  for (std::size_t len = 1; len < s.token.size(); ++len) {
    expect_rejected_without_mutation(
        *s.store, s.key, CausalToken::from_bytes(s.token.bytes().substr(0, len)));
  }
}

TEST(TokenMisuse, SessionRememberedTokenSurvivesBadTokenRejection) {
  Seeded s = seeded_store("dvv");
  Session session(dvv::kv::client_actor(3), *s.store);
  const auto read = session.get(s.key);
  ASSERT_TRUE(read.ok());
  const CausalToken remembered = session.token_for(s.key);
  ASSERT_FALSE(remembered.empty());

  // A corrupted copy of the session's own token is rejected...
  std::string corrupt = remembered.bytes();
  corrupt[corrupt.size() / 2] = static_cast<char>(corrupt[corrupt.size() / 2] ^ 1);
  const auto bad = s.store->put(s.key, session.id(),
                                CausalToken::from_bytes(std::move(corrupt)), "x");
  EXPECT_EQ(bad.status, StoreStatus::kBadToken);

  // ...the session's remembered token is untouched, and its next put
  // is a NORMAL contextful write (overwrites what was read — exactly
  // one sibling after), not a blind one.
  EXPECT_EQ(session.token_for(s.key), remembered);
  EXPECT_TRUE(session.put(s.key, "v2").ok());
  const auto after = session.get(s.key);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.values, std::vector<std::string>{"v2"})
      << "the rejected put must not have degraded the session to blind writes";
}

// ---- session semantics (satellite) -----------------------------------------

TEST(StoreSession, RmwOnUnavailableReadDoesNotWrite) {
  const auto store = dvv::kv::make_store("dvv", store_config());
  ASSERT_NE(store, nullptr);
  Session session(dvv::kv::client_actor(0), *store);
  const Key key = "cart";
  ASSERT_TRUE(session.put(key, "v1").ok());
  ASSERT_TRUE(session.get(key).ok());

  // The whole preference list goes dark.
  for (const ReplicaId r : store->preference_list(key)) {
    store->set_alive(r, false);
  }

  bool modifier_ran = false;
  const auto receipt = session.rmw(key, [&](const std::vector<std::string>&) {
    modifier_ran = true;
    return std::string("clobber");
  });
  EXPECT_EQ(receipt.status, StoreStatus::kUnavailable);
  EXPECT_TRUE(receipt.receipt.unavailable);
  EXPECT_FALSE(modifier_ran)
      << "an unavailable read must not feed f({}) into a write";

  for (const ReplicaId r : store->preference_list(key)) {
    store->set_alive(r, true);
  }
  const auto after = session.get(key);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.values, std::vector<std::string>{"v1"})
      << "no write may have happened while the key was unavailable";

  // And the session's token survived the outage: the next rmw is a
  // normal read-modify-write.
  EXPECT_TRUE(session.rmw(key, [](const std::vector<std::string>&) {
                       return std::string("v2");
                     }).ok());
  EXPECT_EQ(session.get(key).values, std::vector<std::string>{"v2"});
}

TEST(StoreSession, UnavailableReadLeavesRememberedTokenUntouched) {
  const auto store = dvv::kv::make_store("dvvset", store_config());
  ASSERT_NE(store, nullptr);
  Session session(dvv::kv::client_actor(1), *store);
  const Key key = "k";
  ASSERT_TRUE(session.put(key, "v1").ok());
  ASSERT_TRUE(session.get(key).ok());
  const CausalToken remembered = session.token_for(key);

  for (const ReplicaId r : store->preference_list(key)) {
    store->set_alive(r, false);
  }
  const auto result = session.get(key);
  EXPECT_EQ(result.status, StoreStatus::kUnavailable);
  EXPECT_TRUE(result.token.empty()) << "error replies carry no token";
  EXPECT_EQ(session.token_for(key), remembered);
}

}  // namespace
