// Tests for core::HistorySiblings — the exact causal-history kernel used
// as the oracle.  Verifies the workflow semantics and (crucially) that
// it agrees with the DVV kernel on randomized single-key traces, which
// is the §2 claim "DVV are the immediate representation of causal
// histories".
#include "core/history_kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "core/causality.hpp"
#include "core/dvv_kernel.hpp"
#include "util/rng.hpp"

namespace {

using dvv::core::CausalHistory;
using dvv::core::Dot;
using dvv::core::DvvSiblings;
using dvv::core::HistorySiblings;
using dvv::core::Ordering;
using dvv::core::VersionVector;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;

using Siblings = HistorySiblings<std::string>;

TEST(HistoryKernel, BlindWriteMintsFirstEvent) {
  Siblings s;
  const Dot id = s.update(kA, CausalHistory{}, "v1");
  EXPECT_EQ(id, (Dot{kA, 1}));
  ASSERT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(s.versions()[0].history, (CausalHistory{Dot{kA, 1}}));
}

TEST(HistoryKernel, RmwExtendsHistory) {
  Siblings s;
  s.update(kA, CausalHistory{}, "v1");
  const auto ctx = s.context();
  const Dot id = s.update(kA, ctx, "v2");
  EXPECT_EQ(id, (Dot{kA, 2}));
  ASSERT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(s.versions()[0].history, (CausalHistory{Dot{kA, 1}, Dot{kA, 2}}));
}

TEST(HistoryKernel, StaleContextYieldsSiblings) {
  Siblings s;
  s.update(kA, CausalHistory{}, "v1");
  const auto stale = s.context();
  s.update(kA, stale, "w1");  // {A1,A2}
  s.update(kA, stale, "w2");  // {A1,A3} — concurrent with {A1,A2}
  ASSERT_EQ(s.sibling_count(), 2u);
  EXPECT_EQ(s.versions()[0].history.compare(s.versions()[1].history),
            Ordering::kConcurrent);
}

TEST(HistoryKernel, EventIdsNeverReused) {
  Siblings s;
  std::set<std::pair<dvv::core::ActorId, dvv::core::Counter>> seen;
  CausalHistory ctx;
  dvv::util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    if (rng.chance(0.5)) ctx = s.context();
    const Dot id = s.update(rng.below(2), rng.chance(0.3) ? CausalHistory{} : ctx,
                            "w" + std::to_string(i));
    EXPECT_TRUE(seen.insert({id.node, id.counter}).second)
        << "duplicate event id " << id.to_string();
  }
}

TEST(HistoryKernel, SyncKeepsExactlyNonDominated) {
  Siblings a, b;
  a.update(kA, CausalHistory{}, "x");   // {A1}
  b.sync(a);                            // b = {A1}
  const auto ctx = b.context();
  b.update(kB, ctx, "y");               // {A1,B1} dominates {A1}
  a.update(kA, a.context(), "z");       // {A1,A2} concurrent with {A1,B1}

  a.sync(b);
  ASSERT_EQ(a.sibling_count(), 2u);
  std::multiset<std::string> values;
  for (const auto& v : a.versions()) values.insert(v.value);
  EXPECT_TRUE(values.contains("y"));
  EXPECT_TRUE(values.contains("z"));
  EXPECT_FALSE(values.contains("x")) << "dominated version must be gone";
}

TEST(HistoryKernel, ContextIsUnionOfHistories) {
  Siblings s;
  s.update(kA, CausalHistory{}, "x");
  s.update(kB, CausalHistory{}, "y");
  const CausalHistory ctx = s.context();
  EXPECT_TRUE(ctx.contains(Dot{kA, 1}));
  EXPECT_TRUE(ctx.contains(Dot{kB, 1}));
  EXPECT_EQ(ctx.size(), 2u);
}

// Lockstep agreement with the DVV kernel on randomized single-key
// multi-replica traces: same operations, same surviving values — the
// core soundness-and-precision claim of the paper (E9 at kernel level).
TEST(HistoryKernel, DvvKernelMatchesOracleOnRandomTraces) {
  dvv::util::Rng rng(0x0ac1e);
  for (int trial = 0; trial < 300; ++trial) {
    constexpr std::size_t kServers = 3;
    constexpr std::size_t kClients = 4;
    std::array<DvvSiblings<std::string>, kServers> dvv_replica;
    std::array<Siblings, kServers> oracle_replica;
    std::array<VersionVector, kClients> dvv_ctx;
    std::array<CausalHistory, kClients> oracle_ctx;

    const auto steps = 5 + rng.below(25);
    for (std::uint64_t step = 0; step < steps; ++step) {
      const auto server = rng.index(kServers);
      const auto client = rng.index(kClients);
      switch (rng.below(4)) {
        case 0: {  // GET
          dvv_ctx[client] = dvv_replica[server].context();
          oracle_ctx[client] = oracle_replica[server].context();
          break;
        }
        case 1: {  // PUT with context
          const std::string v = "w" + std::to_string(trial) + "-" + std::to_string(step);
          dvv_replica[server].update(server, dvv_ctx[client], v);
          oracle_replica[server].update(server, oracle_ctx[client], v);
          break;
        }
        case 2: {  // blind PUT
          const std::string v = "b" + std::to_string(trial) + "-" + std::to_string(step);
          dvv_replica[server].update(server, VersionVector{}, v);
          oracle_replica[server].update(server, CausalHistory{}, v);
          break;
        }
        case 3: {  // anti-entropy
          const auto other = rng.index(kServers);
          dvv_replica[server].sync(dvv_replica[other]);
          oracle_replica[server].sync(oracle_replica[other]);
          break;
        }
      }
      // Invariant after every step: identical sibling values per replica.
      for (std::size_t r = 0; r < kServers; ++r) {
        std::multiset<std::string> dvv_values, oracle_values;
        for (const auto& v : dvv_replica[r].versions()) dvv_values.insert(v.value);
        for (const auto& v : oracle_replica[r].versions())
          oracle_values.insert(v.value);
        ASSERT_EQ(dvv_values, oracle_values)
            << "divergence at trial " << trial << " step " << step << " replica " << r;
      }
    }
  }
}

}  // namespace
