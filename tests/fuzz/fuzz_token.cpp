// Fuzz harness: kv::decode_token over adversarial bytes.
//
// The causal-token decoder is the ONLY thing standing between a hostile
// client and the replica state — the facade feeds it whatever bytes
// came back with a PUT.  Contract under fuzz:
//
//   1. no input may abort, leak, or trip ASan/UBSan — malformed tokens
//      are rejected by returning false, period;
//   2. round-trip canonicality: if a nonempty input DOES decode for
//      some mechanism, re-encoding the decoded context must reproduce
//      the input byte-for-byte (each context has exactly one accepted
//      wire form, so byte-equality of tokens is context equality);
//   3. a nonempty token decodes for AT MOST one mechanism tag — a token
//      minted for one store can never be replayed against another.
//
// Built two ways (CMakeLists.txt): with -DDVV_FUZZ as a libFuzzer
// binary, and always as fuzz_token_replay — a plain runner that replays
// tests/fuzz/corpus/ through this same entry point under ctest, so
// every past finding stays a permanent regression test.
#include <cstddef>
#include <cstdint>
#include <string>

#include "kv/token.hpp"
#include "util/assert.hpp"

namespace {

using dvv::kv::CausalToken;
using dvv::kv::decode_token;
using dvv::kv::encode_token;
using dvv::kv::MechanismId;

/// Decodes `token` as `id` into the mechanism's context type; on
/// success checks the canonical round-trip and returns true.
[[nodiscard]] bool decode_and_check(const CausalToken& token, MechanismId id) {
  const auto check_roundtrip = [&](const CausalToken& reencoded) {
    DVV_ASSERT_MSG(token.empty() || reencoded.bytes() == token.bytes(),
                   "fuzz: accepted token is not in canonical form");
  };
  switch (id) {
    case MechanismId::kVve: {
      dvv::core::VersionVectorWithExceptions ctx;
      if (!decode_token(token, id, ctx)) return false;
      check_roundtrip(encode_token(id, ctx));
      return true;
    }
    case MechanismId::kCausalHistory: {
      dvv::core::CausalHistory ctx;
      if (!decode_token(token, id, ctx)) return false;
      check_roundtrip(encode_token(id, ctx));
      return true;
    }
    default: {  // the four VersionVector-context mechanisms
      dvv::core::VersionVector ctx;
      if (!decode_token(token, id, ctx)) return false;
      check_roundtrip(encode_token(id, ctx));
      return true;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const CausalToken token = CausalToken::from_bytes(
      std::string(reinterpret_cast<const char*>(data), size));

  // Structural probe first: must never abort, whatever the bytes.
  (void)dvv::kv::token_mechanism(token);

  std::size_t accepted = 0;
  for (const MechanismId id :
       {MechanismId::kDvv, MechanismId::kDvvSet, MechanismId::kServerVv,
        MechanismId::kClientVv, MechanismId::kVve,
        MechanismId::kCausalHistory}) {
    if (decode_and_check(token, id)) ++accepted;
  }
  // The empty token is the empty context for every mechanism; any other
  // input matches its header's mechanism tag at most.
  DVV_ASSERT_MSG(token.empty() ? accepted == 6 : accepted <= 1,
                 "fuzz: token accepted by multiple mechanisms");
  return 0;
}
