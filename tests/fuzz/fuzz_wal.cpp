// Fuzz harness: WalBackend replay over mutated segment files.
//
// The crash model can only tear the active tail, but disks bit-rot and
// segment files can be edited by anything with filesystem access — so
// recovery's real input domain is arbitrary bytes.  The input is split
// into two sealed segments (exercising the mid-log corruption path,
// which truncates everything after the first bad frame) and replayed.
// Contract under fuzz:
//
//   1. recover() never aborts, leaks or trips ASan/UBSan, whatever the
//      segment bytes — a frame that fails length, CRC or the strict
//      post-CRC payload parse ends the scan as a torn tail;
//   2. the backend stays WRITABLE after surviving garbage: a fresh
//      append + flush must replay back on the next recover (recovery
//      repairs the log to a clean valid prefix, it does not wedge).
//
// Built as a libFuzzer binary under -DDVV_FUZZ and always as
// fuzz_wal_replay, the ctest corpus regression runner.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "store/backend.hpp"
#include "store/wal_backend.hpp"
#include "util/assert.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  dvv::store::WalBackend wal;

  const auto* bytes = reinterpret_cast<const std::byte*>(data);
  const std::size_t cut = size / 2;
  wal.inject_raw_segment(std::vector<std::byte>(bytes, bytes + cut));
  wal.inject_raw_segment(std::vector<std::byte>(bytes + cut, bytes + size));

  const dvv::store::RecoveryResult first = wal.recover();
  DVV_ASSERT_MSG(first.records.size() == first.stats.records_replayed,
                 "fuzz: recovery stats disagree with replayed records");

  // Whatever survived, the repaired log must accept and retain new
  // writes: replay-after-append sees every prior record plus ours.
  wal.append({dvv::store::RecordType::kData, "fuzz-key", 0, "fuzz-state"});
  wal.flush();
  const dvv::store::RecoveryResult second = wal.recover();
  DVV_ASSERT_MSG(
      second.stats.records_replayed == first.stats.records_replayed + 1,
      "fuzz: append after recovery did not survive the next replay");
  DVV_ASSERT_MSG(second.stats.torn_records_dropped == 0,
                 "fuzz: repaired log still has torn frames");
  return 0;
}
