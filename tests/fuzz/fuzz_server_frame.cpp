// Fuzz harness: the dvvd client decode boundary over adversarial bytes.
//
// These ARE the first bytes a hostile client controls: the server's
// connection state machine runs FrameDecoder + parse_request verbatim
// (src/server/protocol.hpp), so this harness fuzzes the real parser,
// not a copy.  Contract under fuzz:
//
//   1. FrameDecoder never aborts, over-reads or allocates for a forged
//      length claim — an oversized claim poisons the stream without
//      buffering the claimed bytes;
//   2. parse_request never aborts on any payload; every reject names a
//      taxonomy reason; an accepted request re-encodes to exactly the
//      payload bytes (strict decode admits only the canonical form);
//   3. the response parser survives the same bytes (a hostile server
//      must not be able to crash a client either).
//
// The input drives the decoder through adversarial SPLITS too: the
// first byte selects a chunk size, so the same frame bytes arrive
// whole or one byte at a time across feed() calls — partial-read
// handling is part of the fuzzed surface.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.hpp"
#include "util/assert.hpp"

namespace {

void check_payload(std::string_view payload) {
  dvv::server::Request req;
  const dvv::server::RejectReason reject =
      dvv::server::parse_request(payload, req);
  if (reject == dvv::server::RejectReason::kNone) {
    // Canonical form: re-encoding the parsed request reproduces the
    // accepted bytes exactly.
    std::string reencoded;
    switch (req.opcode) {
      case dvv::server::Opcode::kGet:
        dvv::server::encode_get_request(reencoded, req.request_id, req.key);
        break;
      case dvv::server::Opcode::kPut:
        dvv::server::encode_put_request(reencoded, req.request_id, req.key,
                                        req.token_bytes, req.value,
                                        req.client_id);
        break;
      case dvv::server::Opcode::kJoin:
      case dvv::server::Opcode::kLeave:
        dvv::server::encode_member_change_request(reencoded, req.opcode,
                                                  req.request_id, req.node);
        break;
      case dvv::server::Opcode::kRingInfo:
        dvv::server::encode_ring_info_request(reencoded, req.request_id);
        break;
    }
    DVV_ASSERT_MSG(reencoded == payload,
                   "fuzz: accepted request is not in canonical form");
  }
  // The client's response parser faces the same payload (every opcode
  // interpretation) — it must reject or accept without aborting.
  for (const dvv::server::Opcode sent :
       {dvv::server::Opcode::kGet, dvv::server::Opcode::kPut,
        dvv::server::Opcode::kJoin, dvv::server::Opcode::kLeave,
        dvv::server::Opcode::kRingInfo}) {
    dvv::server::Response resp;
    (void)dvv::server::parse_response(payload, sent, resp);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  // Byte 0 picks the feed granularity: 0 = everything at once, k = in
  // chunks of k bytes.  Splitting must never change what decodes.
  const std::size_t chunk = data[0] == 0 ? size : data[0];
  const std::string_view stream(reinterpret_cast<const char*>(data + 1),
                                size - 1);

  dvv::server::FrameDecoder decoder;
  std::size_t fed = 0;
  std::size_t frames_split = 0;
  std::string payload;
  while (fed < stream.size() && !decoder.poisoned()) {
    const std::size_t n = std::min(chunk, stream.size() - fed);
    decoder.feed(stream.substr(fed, n));
    fed += n;
    while (decoder.next(payload)) {
      check_payload(payload);
      ++frames_split;
    }
  }

  // Un-split twin: the same bytes fed whole must yield the same frames
  // and the same poisoned verdict.
  dvv::server::FrameDecoder whole;
  whole.feed(stream);
  std::size_t frames_whole = 0;
  while (whole.next(payload)) {
    check_payload(payload);
    ++frames_whole;
  }
  DVV_ASSERT_MSG(whole.poisoned() == decoder.poisoned(),
                 "fuzz: split changed the poisoned verdict");
  DVV_ASSERT_MSG(frames_whole == frames_split,
                 "fuzz: split changed the extracted frame count");
  return 0;
}
