// Corpus regression runner: a plain main() that replays committed
// corpus files through a fuzz harness's entry point in NORMAL builds.
//
// Linked against each tests/fuzz/fuzz_*.cpp (which defines
// LLVMFuzzerTestOneInput) when libFuzzer is not in play, and registered
// under ctest as fuzz_corpus_<harness> — so the seed corpus, including
// every crasher a fuzzer ever minted, is re-verified on every test run
// with no fuzzing toolchain required.  Arguments are corpus files or
// directories (walked non-recursively, in sorted name order for
// deterministic replay).  Zero replayed inputs is a FAILURE: an empty
// or mislocated corpus must not pass silently.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool replay_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz-replay: cannot read %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg)) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "fuzz-replay: no such corpus input: %s\n", argv[i]);
      return 1;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t replayed = 0;
  for (const fs::path& file : files) {
    if (!replay_file(file)) return 1;
    ++replayed;
  }
  if (replayed == 0) {
    std::fprintf(stderr,
                 "fuzz-replay: no corpus inputs found — an empty corpus "
                 "must not pass\n");
    return 1;
  }
  std::printf("fuzz-replay: %zu corpus inputs replayed clean\n", replayed);
  return 0;
}
