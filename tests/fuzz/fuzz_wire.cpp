// Fuzz harness: net wire-message strict decode over adversarial bytes.
//
// Once ROADMAP item 1 puts a socket in front of the transport, these
// are the first bytes a hostile peer controls.  Contract under fuzz:
//
//   1. try_decode_from_bytes / decode_or_reject never abort, leak or
//      trip ASan/UBSan — malformed frames come back nullopt;
//   2. canonical round-trip: an accepted frame re-encodes to exactly
//      the input bytes (strict decode admits only the canonical form:
//      minimal varints, bool flags in {0,1}, full consumption);
//   3. wire_size agrees with the real encoding — the inline transport's
//      zero-copy metering can never drift from the bytes a faulty
//      transport actually pays for.
//
// Built as a libFuzzer binary under -DDVV_FUZZ and always as
// fuzz_wire_replay, the ctest corpus regression runner.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/message.hpp"
#include "util/assert.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  const std::optional<dvv::net::Message> msg =
      dvv::net::try_decode_from_bytes(bytes);
  if (msg.has_value()) {
    const std::string reencoded = dvv::net::encode_to_bytes(*msg);
    DVV_ASSERT_MSG(reencoded == bytes,
                   "fuzz: accepted frame is not in canonical form");
    DVV_ASSERT_MSG(dvv::net::wire_size(*msg) == reencoded.size(),
                   "fuzz: wire_size disagrees with the real encoding");
  }

  // The counting wrapper must agree with the bare decode and must
  // absorb the rejection without aborting (counter bump only).
  const std::optional<dvv::net::Message> counted =
      dvv::net::decode_or_reject(bytes);
  DVV_ASSERT_MSG(counted.has_value() == msg.has_value(),
                 "fuzz: decode_or_reject disagrees with try_decode");
  return 0;
}
