// Tests for hinted handoff (Dynamo's sloppy quorum) over the DVV
// mechanism: writes park on fallback servers while owners are down and
// flow home on recovery — with full causality metadata, so delivery is
// a plain sync and can never reorder, duplicate or resurrect anything.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::Key;
using dvv::kv::ReplicaId;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

TEST(HintedHandoff, NoDeadOwnersMeansNoHints) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  EXPECT_EQ(cluster.hinted_count(), 0u);
  for (const auto r : pref) EXPECT_TRUE(cluster.get(key, r).found);
}

TEST(HintedHandoff, DeadOwnerGetsAHintParkedElsewhere) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.replica(pref[2]).set_alive(false);

  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  EXPECT_EQ(cluster.hinted_count(), 1u);
  EXPECT_FALSE(cluster.get(key, pref[2]).found) << "owner is down";
  // The hint does not serve reads anywhere (non-owners don't expose it).
  for (ReplicaId r = 0; r < 6; ++r) {
    if (r == pref[0] || r == pref[1]) continue;
    EXPECT_FALSE(cluster.get(key, r).found) << "replica " << r;
  }
}

TEST(HintedHandoff, DeliveryAfterRecoveryFillsTheOwner) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.replica(pref[2]).set_alive(false);
  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");

  // While the owner is down, delivery is a no-op.
  EXPECT_EQ(cluster.deliver_hints(), 0u);
  EXPECT_EQ(cluster.hinted_count(), 1u);

  cluster.replica(pref[2]).set_alive(true);
  EXPECT_EQ(cluster.deliver_hints(), 1u);
  EXPECT_EQ(cluster.hinted_count(), 0u);
  const auto got = cluster.get(key, pref[2]);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.values[0], "v");
}

TEST(HintedHandoff, LateDeliveryCannotResurrectOverwrittenData) {
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const Key key = "k";
  const auto pref = cluster.preference_list(key);

  // v1 written while pref[2] is down: hint parked.
  cluster.replica(pref[2]).set_alive(false);
  alice.get(key);
  const auto ctx1 = alice.context_for(key);
  cluster.put_with_handoff(key, pref[0], alice.id(), ctx1, "v1");
  ASSERT_EQ(cluster.hinted_count(), 1u);

  // v1 is then overwritten by v2 (owner still down; another hint).
  alice.get(key);
  const auto ctx2 = alice.context_for(key);
  cluster.put_with_handoff(key, pref[0], alice.id(), ctx2, "v2");

  // Owner recovers; the (merged) hint arrives late.
  cluster.replica(pref[2]).set_alive(true);
  cluster.deliver_hints();
  const auto got = cluster.get(key, pref[2]);
  ASSERT_TRUE(got.found);
  ASSERT_EQ(got.values.size(), 1u) << "v1 must not survive next to v2";
  EXPECT_EQ(got.values[0], "v2");
}

TEST(HintedHandoff, ConcurrentHintsMergeAsSiblingsAtTheOwner) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.replica(pref[2]).set_alive(false);

  // Two blind racing writes through different coordinators, both hinted.
  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "x");
  cluster.put_with_handoff(key, pref[1], dvv::kv::client_actor(1), {}, "y");

  cluster.replica(pref[2]).set_alive(true);
  cluster.deliver_hints();
  const auto got = cluster.get(key, pref[2]);
  ASSERT_TRUE(got.found);
  const std::set<std::string> values(got.values.begin(), got.values.end());
  EXPECT_EQ(values, (std::set<std::string>{"x", "y"}))
      << "both racing writes reach the recovered owner as siblings";
}

TEST(HintedHandoff, RepeatedDeliveryIsIdempotent) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.replica(pref[2]).set_alive(false);
  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  cluster.replica(pref[2]).set_alive(true);
  cluster.deliver_hints();
  const auto before = cluster.footprint();
  cluster.deliver_hints();  // nothing parked: no-op
  EXPECT_EQ(cluster.hinted_count(), 0u);
  const auto after = cluster.footprint();
  EXPECT_EQ(before.siblings, after.siblings);
}

// Regression (a crashed server must not push writes): hints parked on a
// fallback that is itself down stay parked — delivery happens only once
// the FALLBACK is back, even if the owner recovered long before.
TEST(HintedHandoff, DeadFallbackDoesNotPushParkedHints) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  const auto order = cluster.ring().ring_order(key);
  const ReplicaId fallback = order[3];

  cluster.replica(pref[2]).set_alive(false);
  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  ASSERT_EQ(cluster.replica(fallback).hinted_count(), 1u);

  cluster.replica(fallback).set_alive(false);  // the fallback dies too
  cluster.replica(pref[2]).set_alive(true);    // the owner returns

  EXPECT_EQ(cluster.deliver_hints(), 0u) << "dead holder cannot push";
  EXPECT_EQ(cluster.hinted_count(), 1u);
  EXPECT_FALSE(cluster.get(key, pref[2]).found)
      << "the write must not teleport off a crashed fallback";

  cluster.replica(fallback).set_alive(true);
  EXPECT_EQ(cluster.deliver_hints(), 1u);
  EXPECT_EQ(cluster.hinted_count(), 0u);
  EXPECT_TRUE(cluster.get(key, pref[2]).found);
}

// Satellite semantics pin: parked hints are VISIBLE to anti-entropy.
// When every owner that saw a write crashes and loses it, the write
// survives only inside a fallback's parked hint — an AAE round folds it
// back into the alive owners, while the hint itself stays parked for
// its (long-dead) owner until that owner actually returns.
TEST(HintedHandoff, AaeFoldsParkedHintsIntoAliveOwners) {
  auto scenario = [] {
    ClusterConfig cfg = config();
    // The point is LOSING the owners' copies: pin the no-durability
    // backend even when the suite runs with DVV_STORE_BACKEND=wal.
    cfg.storage.kind = dvv::store::BackendKind::kMem;
    Cluster<DvvMechanism> cluster(cfg, {});
    const Key key = "k";
    const auto pref = cluster.preference_list(key);
    cluster.replica(pref[2]).set_alive(false);  // long-dead owner
    cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
    // Both owners that accepted the write crash with no durable log:
    // the parked hint is now the only surviving copy.
    cluster.crash(pref[0]);
    cluster.crash(pref[1]);
    (void)cluster.recover(pref[0]);
    (void)cluster.recover(pref[1]);
    EXPECT_FALSE(cluster.get(key, pref[0]).found);
    EXPECT_EQ(cluster.hinted_count(), 1u);
    return cluster;
  };

  const Key key = "k";
  // Legacy pass and digest pass must both find the hint-only key and
  // reach the same bytes.
  auto legacy = scenario();
  auto digest = scenario();
  const auto pref = legacy.preference_list(key);
  EXPECT_GT(legacy.anti_entropy(), 0u);
  EXPECT_GT(digest.anti_entropy_digest().stats.keys_shipped, 0u);

  for (auto* cluster : {&legacy, &digest}) {
    for (const ReplicaId r : {pref[0], pref[1]}) {
      const auto got = cluster->get(key, r);
      ASSERT_TRUE(got.found) << "hint must repair alive owner " << r;
      EXPECT_EQ(got.values, std::vector<std::string>{"v"});
    }
    EXPECT_EQ(cluster->hinted_count(), 1u)
        << "hint stays parked until its owner returns";
  }
  dvv::codec::Writer l, d;
  dvv::codec::encode(l, *legacy.replica(pref[0]).find(key));
  dvv::codec::encode(d, *digest.replica(pref[0]).find(key));
  EXPECT_EQ(l.buffer(), d.buffer()) << "passes agree byte for byte";

  // Fixed point: repeating either pass moves nothing.
  EXPECT_EQ(legacy.anti_entropy(), 0u);
  EXPECT_EQ(digest.anti_entropy_digest().stats.keys_shipped, 0u);

  // The owner finally returns: delivery drains the (reconciled) hint.
  legacy.replica(pref[2]).set_alive(true);
  legacy.deliver_hints();
  EXPECT_EQ(legacy.hinted_count(), 0u);
  EXPECT_EQ(legacy.get(key, pref[2]).values, std::vector<std::string>{"v"});
  EXPECT_EQ(legacy.anti_entropy(), 0u) << "delivered merge is already canonical";
}

// Hints survive a full pairwise sync: sync_with treats parked state as
// replica state, so a fallback handing its keys to a peer hands the
// hints along too.
TEST(HintedHandoff, FullSyncCarriesParkedHints) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  const auto order = cluster.ring().ring_order(key);
  cluster.replica(pref[2]).set_alive(false);
  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  ASSERT_EQ(cluster.replica(order[3]).hinted_count(), 1u);

  cluster.replica(order[3]).sync_with(cluster.mechanism(),
                                      cluster.replica(order[4]));
  EXPECT_EQ(cluster.replica(order[4]).hinted_count(), 1u)
      << "full sync must not leave hints behind";
}

// Satellite regression: the receipt used to count hint stashes in
// `replicated_to` (conflating a parked fallback copy with a real
// preference-list copy) and silently `break` when no fallback was
// alive.  The durability levels are now separated.
TEST(HintedHandoff, ReceiptSeparatesReplicasFromHints) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.replica(pref[2]).set_alive(false);

  const auto receipt =
      cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  EXPECT_EQ(receipt.replicated_to, 1u) << "one alive non-coordinator member";
  EXPECT_EQ(receipt.hinted, 1u) << "one dead member covered by a hint";
  EXPECT_EQ(receipt.unparked, 0u);
  EXPECT_GT(receipt.replication_bytes, 0u);
}

// Satellite regression: when every fallback candidate is dead too, the
// uncovered owners must be REPORTED (`unparked`), not silently skipped
// — the write is below its sloppy-quorum durability and only the
// receipt can tell the caller.
TEST(HintedHandoff, NowhereToParkIsReportedNotSilent) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  const auto order = cluster.ring().ring_order(key);

  // Kill one preference member AND every non-preference fallback.
  cluster.replica(pref[2]).set_alive(false);
  for (std::size_t slot = cluster.ring().replication(); slot < order.size();
       ++slot) {
    cluster.replica(order[slot]).set_alive(false);
  }

  const auto receipt =
      cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  EXPECT_EQ(receipt.replicated_to, 1u);
  EXPECT_EQ(receipt.hinted, 0u) << "no alive fallback to park on";
  EXPECT_EQ(receipt.unparked, 1u) << "the uncovered owner must be counted";
  EXPECT_EQ(cluster.hinted_count(), 0u);

  // Two dead owners, zero fallbacks: both are reported.
  cluster.replica(pref[1]).set_alive(false);
  const auto receipt2 =
      cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "w");
  EXPECT_EQ(receipt2.replicated_to, 0u);
  EXPECT_EQ(receipt2.unparked, 2u);
}

TEST(HintedHandoff, FallbackIsOutsideThePreferenceList) {
  Cluster<DvvMechanism> cluster(config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  const auto order = cluster.ring().ring_order(key);
  ASSERT_EQ(order.size(), 6u);
  // First three of ring order are the preference list.
  EXPECT_EQ(std::vector<ReplicaId>(order.begin(), order.begin() + 3), pref);

  cluster.replica(pref[1]).set_alive(false);
  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  // The hint must be parked on order[3] (the first fallback).
  EXPECT_EQ(cluster.replica(order[3]).hinted_count(), 1u);
}

}  // namespace
