// Unit tests for util::FlatMap, the sorted-vector map every clock is
// built on.  Clock correctness reduces to this container behaving like
// std::map, so the suite includes a randomized equivalence check.
#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/rng.hpp"

namespace {

using dvv::util::FlatMap;

TEST(FlatMap, StartsEmpty) {
  FlatMap<int, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.find(1), m.end());
}

TEST(FlatMap, InsertOrAssignInsertsAndOverwrites) {
  FlatMap<int, std::string> m;
  m.insert_or_assign(2, "two");
  m.insert_or_assign(1, "one");
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(1), "one");
  EXPECT_EQ(m.at(2), "two");

  m.insert_or_assign(1, "uno");
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(1), "uno");
}

TEST(FlatMap, EntriesStaySortedByKey) {
  FlatMap<int, int> m;
  for (int k : {5, 1, 9, 3, 7}) m.insert_or_assign(k, k * 10);
  int prev = -1;
  for (const auto& [k, v] : m) {
    EXPECT_LT(prev, k);
    EXPECT_EQ(v, k * 10);
    prev = k;
  }
}

TEST(FlatMap, GetOrReturnsFallbackForMissing) {
  FlatMap<int, int> m{{1, 10}};
  EXPECT_EQ(m.get_or(1, -1), 10);
  EXPECT_EQ(m.get_or(2, -1), -1);
  EXPECT_EQ(m.get_or(2, 0), 0);
}

TEST(FlatMap, SubscriptDefaultConstructsMissing) {
  FlatMap<int, int> m;
  EXPECT_EQ(m[7], 0);
  m[7] = 42;
  EXPECT_EQ(m[7], 42);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseByKey) {
  FlatMap<int, int> m{{1, 1}, {2, 2}, {3, 3}};
  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(2), 0u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.contains(3));
}

TEST(FlatMap, EraseIfRemovesMatching) {
  FlatMap<int, int> m{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  const auto removed = m.erase_if([](int k, int) { return k % 2 == 0; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.contains(3));
}

TEST(FlatMap, InitializerListSortsInput) {
  FlatMap<int, int> m{{3, 30}, {1, 10}, {2, 20}};
  auto it = m.begin();
  EXPECT_EQ(it->first, 1);
  EXPECT_EQ((++it)->first, 2);
  EXPECT_EQ((++it)->first, 3);
}

TEST(FlatMap, RangeConstructorLastDuplicateWins) {
  std::vector<std::pair<int, int>> input{{1, 10}, {2, 20}, {1, 11}, {2, 22}, {1, 12}};
  FlatMap<int, int> m(input.begin(), input.end());
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(1), 12);
  EXPECT_EQ(m.at(2), 22);
}

TEST(FlatMap, MergeWithCombinesSharedKeysAdoptsOthers) {
  FlatMap<int, int> a{{1, 5}, {3, 3}};
  FlatMap<int, int> b{{1, 7}, {2, 9}};
  a.merge_with(b, [](int x, int y) { return std::max(x, y); });
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at(1), 7);
  EXPECT_EQ(a.at(2), 9);
  EXPECT_EQ(a.at(3), 3);
}

TEST(FlatMap, MergeWithEmptySidesAreIdentity) {
  FlatMap<int, int> a{{1, 1}};
  FlatMap<int, int> empty;
  auto keep_left = [](int x, int) { return x; };

  FlatMap<int, int> a2 = a;
  a2.merge_with(empty, keep_left);
  EXPECT_EQ(a2, a);

  FlatMap<int, int> e2 = empty;
  e2.merge_with(a, keep_left);
  EXPECT_EQ(e2, a);
}

TEST(FlatMap, EqualityComparesContents) {
  FlatMap<int, int> a{{1, 1}, {2, 2}};
  FlatMap<int, int> b{{2, 2}, {1, 1}};
  FlatMap<int, int> c{{1, 1}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// Randomized equivalence with std::map: same operation sequence, same
// observable state.  This is the load-bearing test — clocks do millions
// of these operations in the benches.
TEST(FlatMap, RandomizedEquivalenceWithStdMap) {
  dvv::util::Rng rng(0xf1a7);
  FlatMap<int, int> flat;
  std::map<int, int> ref;
  for (int step = 0; step < 20'000; ++step) {
    const int key = static_cast<int>(rng.below(64));
    switch (rng.below(4)) {
      case 0: {
        const int val = static_cast<int>(rng.below(1000));
        flat.insert_or_assign(key, val);
        ref[key] = val;
        break;
      }
      case 1:
        EXPECT_EQ(flat.erase(key), ref.erase(key));
        break;
      case 2:
        EXPECT_EQ(flat.contains(key), ref.contains(key));
        break;
      case 3: {
        const auto it = ref.find(key);
        EXPECT_EQ(flat.get_or(key, -1), it == ref.end() ? -1 : it->second);
        break;
      }
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto fit = flat.begin();
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(fit->first, k);
    EXPECT_EQ(fit->second, v);
    ++fit;
  }
}

}  // namespace
