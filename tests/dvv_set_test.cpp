// Tests for core::DvvSet — the compact sibling-set clock (S6/E10).
// Verifies the implied-dot bookkeeping, the update/discard/sync
// semantics, the algebraic laws, and (the load-bearing one) value-level
// equivalence with the per-sibling DVV kernel on random traces.
#include "core/dvv_set.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "core/dvv_kernel.hpp"
#include "util/rng.hpp"

namespace {

using dvv::core::Dot;
using dvv::core::DvvSet;
using dvv::core::DvvSiblings;
using dvv::core::VersionVector;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;

using Set = DvvSet<std::string>;

std::multiset<std::string> values_of(const Set& s) {
  std::multiset<std::string> out;
  for (const auto* v : s.values()) out.insert(*v);
  return out;
}

TEST(DvvSet, FreshIsEmpty) {
  Set s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.sibling_count(), 0u);
  EXPECT_EQ(s.clock_entries(), 0u);
  EXPECT_TRUE(s.context().empty());
}

TEST(DvvSet, BlindWrite) {
  Set s;
  const Dot d = s.update(kA, VersionVector{}, "v1");
  EXPECT_EQ(d, (Dot{kA, 1}));
  EXPECT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(s.context(), (VersionVector{{kA, 1}}));
}

TEST(DvvSet, RmwReplacesValueKeepsCausalPast) {
  Set s;
  s.update(kA, VersionVector{}, "v1");
  const auto ctx = s.context();
  const Dot d = s.update(kA, ctx, "v2");
  EXPECT_EQ(d, (Dot{kA, 2}));
  EXPECT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(values_of(s), (std::multiset<std::string>{"v2"}));
  // The entry still records both events compactly.
  EXPECT_EQ(s.context(), (VersionVector{{kA, 2}}));
  EXPECT_EQ(s.clock_entries(), 1u);
}

TEST(DvvSet, StaleContextKeepsConcurrentValues) {
  Set s;
  s.update(kA, VersionVector{}, "v1");
  const auto stale = s.context();
  s.update(kA, stale, "c1");
  s.update(kA, stale, "c2");
  EXPECT_EQ(s.sibling_count(), 2u);
  EXPECT_EQ(values_of(s), (std::multiset<std::string>{"c1", "c2"}));
  // One clock entry for the whole sibling set — that's the compaction.
  EXPECT_EQ(s.clock_entries(), 1u);
  EXPECT_EQ(s.context(), (VersionVector{{kA, 3}}));
}

TEST(DvvSet, ImpliedDotsAreDescending) {
  Set s;
  s.update(kA, VersionVector{}, "v1");
  const auto stale = s.context();
  s.update(kA, stale, "c1");
  s.update(kA, stale, "c2");
  const auto& e = s.entries()[0];
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_EQ(Set::dot_of(e, 0), (Dot{kA, 3}));  // newest first
  EXPECT_EQ(Set::dot_of(e, 1), (Dot{kA, 2}));
}

TEST(DvvSet, FreshContextOverwritesAllSiblings) {
  Set s;
  s.update(kA, VersionVector{}, "x");
  s.update(kA, VersionVector{}, "y");
  ASSERT_EQ(s.sibling_count(), 2u);
  const auto ctx = s.context();
  s.update(kB, ctx, "merged");  // resolved through another server
  EXPECT_EQ(values_of(s), (std::multiset<std::string>{"merged"}));
  // Entry A keeps its causal knowledge with zero values.
  EXPECT_EQ(s.clock_entries(), 2u);
  EXPECT_EQ(s.context().get(kA), 2u);
  EXPECT_EQ(s.context().get(kB), 1u);
}

TEST(DvvSet, DiscardKeepsEntryMetadata) {
  Set s;
  s.update(kA, VersionVector{}, "x");
  s.discard(s.context());
  EXPECT_EQ(s.sibling_count(), 0u);
  EXPECT_EQ(s.clock_entries(), 1u) << "causal knowledge survives value discard";
  // A later blind write still gets a fresh dot, not (A,1) again.
  const Dot d = s.update(kA, VersionVector{}, "y");
  EXPECT_EQ(d, (Dot{kA, 2}));
}

TEST(DvvSet, SyncDisjointActorsKeepsBoth) {
  Set a, b;
  a.update(kA, VersionVector{}, "x");
  b.update(kB, VersionVector{}, "y");
  a.sync(b);
  EXPECT_EQ(values_of(a), (std::multiset<std::string>{"x", "y"}));
  EXPECT_EQ(a.clock_entries(), 2u);
}

TEST(DvvSet, SyncSameActorNewerRunWins) {
  Set a;
  a.update(kA, VersionVector{}, "v1");
  Set b = a;                       // replicate
  b.update(kA, b.context(), "v2"); // b is strictly newer
  a.sync(b);
  EXPECT_EQ(values_of(a), (std::multiset<std::string>{"v2"}));
  EXPECT_EQ(a.context(), (VersionVector{{kA, 2}}));
}

TEST(DvvSet, SyncKeepsCrossServerConcurrentWrites) {
  // Two replicas diverge after both held v1: one coordinates a write as
  // actor A (dot (A,2)), the other as actor B (dot (B,1)).  Sync must
  // keep both — they are true siblings.  (Dot uniqueness per actor is a
  // deployment invariant: server i mints only actor-i dots.)
  Set c;
  c.update(kA, VersionVector{}, "v1");
  const auto ctx = c.context();
  Set d = c;
  c.update(kA, ctx, "from-a");  // (A,2)
  d.update(kB, ctx, "from-b");  // (B,1)
  c.sync(d);
  EXPECT_EQ(values_of(c), (std::multiset<std::string>{"from-a", "from-b"}));
}

TEST(DvvSet, SyncIsIdempotentCommutativeAssociative) {
  dvv::util::Rng rng(0xd5e7);
  for (int trial = 0; trial < 200; ++trial) {
    // Build three replicas with per-server coordination (server i mints
    // only dots for actor i — the deployment invariant).
    std::array<Set, 3> r;
    std::array<VersionVector, 3> ctx;
    for (int step = 0; step < 20; ++step) {
      const auto i = rng.index(3);
      const auto c = rng.index(3);
      switch (rng.below(3)) {
        case 0:
          ctx[c] = r[i].context();
          break;
        case 1:
          r[i].update(static_cast<dvv::core::ActorId>(i), ctx[c],
                      "w" + std::to_string(trial) + "-" + std::to_string(step));
          break;
        case 2:
          r[i].sync(r[rng.index(3)]);
          break;
      }
    }
    Set ab = r[0], ba = r[1];
    ab.sync(r[1]);
    ba.sync(r[0]);
    EXPECT_EQ(values_of(ab), values_of(ba)) << "commutative, trial " << trial;
    EXPECT_EQ(ab.context(), ba.context());

    Set left = r[0];
    left.sync(r[1]);
    left.sync(r[2]);
    Set bc = r[1];
    bc.sync(r[2]);
    Set right = r[0];
    right.sync(bc);
    EXPECT_EQ(values_of(left), values_of(right)) << "associative, trial " << trial;

    Set twice = ab;
    twice.sync(r[1]);
    EXPECT_EQ(values_of(twice), values_of(ab)) << "idempotent, trial " << trial;
  }
}

// Equivalence with the per-sibling DVV kernel: same trace (server i
// coordinates only as actor i), same surviving values at every step.
TEST(DvvSet, MatchesDvvKernelOnRandomTraces) {
  dvv::util::Rng rng(0x5e7d);
  for (int trial = 0; trial < 300; ++trial) {
    constexpr std::size_t kServers = 3;
    constexpr std::size_t kClients = 4;
    std::array<Set, kServers> set_replica;
    std::array<DvvSiblings<std::string>, kServers> dvv_replica;
    std::array<VersionVector, kClients> set_ctx, dvv_ctx;

    const auto steps = 5 + rng.below(25);
    for (std::uint64_t step = 0; step < steps; ++step) {
      const auto server = rng.index(kServers);
      const auto client = rng.index(kClients);
      switch (rng.below(4)) {
        case 0:
          set_ctx[client] = set_replica[server].context();
          dvv_ctx[client] = dvv_replica[server].context();
          break;
        case 1: {
          const std::string v = "w" + std::to_string(step);
          set_replica[server].update(server, set_ctx[client], v);
          dvv_replica[server].update(server, dvv_ctx[client], v);
          break;
        }
        case 2: {
          const std::string v = "b" + std::to_string(step);
          set_replica[server].update(server, VersionVector{}, v);
          dvv_replica[server].update(server, VersionVector{}, v);
          break;
        }
        case 3: {
          const auto other = rng.index(kServers);
          set_replica[server].sync(set_replica[other]);
          dvv_replica[server].sync(dvv_replica[other]);
          break;
        }
      }
      for (std::size_t r = 0; r < kServers; ++r) {
        std::multiset<std::string> dvv_values;
        for (const auto& v : dvv_replica[r].versions()) dvv_values.insert(v.value);
        ASSERT_EQ(values_of(set_replica[r]), dvv_values)
            << "trial " << trial << " step " << step << " replica " << r;
      }
    }
  }
}

// The compaction claim of E10: under heavy same-key concurrency the
// DVVSet clock stays at one entry per coordinating server while the
// per-sibling representation pays one dot+vector per sibling.
TEST(DvvSet, CompactionUnderSiblingExplosion) {
  Set set;
  DvvSiblings<std::string> dvv;
  set.update(kA, VersionVector{}, "seed");
  dvv.update(kA, VersionVector{}, "seed");
  const auto stale_set = set.context();
  const auto stale_dvv = dvv.context();
  for (int i = 0; i < 50; ++i) {
    set.update(kA, stale_set, "w" + std::to_string(i));
    dvv.update(kA, stale_dvv, "w" + std::to_string(i));
  }
  EXPECT_EQ(set.sibling_count(), dvv.sibling_count());
  EXPECT_EQ(set.clock_entries(), 1u);
  EXPECT_EQ(dvv.clock_entries(), 100u);  // 50 siblings x (dot + one entry)
}

}  // namespace
