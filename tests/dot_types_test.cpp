// Unit tests for the identifier substrate: Dot ordering/printing/
// hashing, validity, and the kv actor-id layout helpers.
#include "core/dot.hpp"

#include <gtest/gtest.h>

#include <set>

#include "kv/types.hpp"

namespace {

using dvv::core::Dot;
using dvv::core::DotHash;

TEST(Dot, DefaultIsInvalid) {
  const Dot d;
  EXPECT_FALSE(dvv::core::valid(d));
  EXPECT_TRUE(dvv::core::valid(Dot{0, 1}));
}

TEST(Dot, TotalOrderIsNodeThenCounter) {
  EXPECT_LT((Dot{0, 9}), (Dot{1, 1}));
  EXPECT_LT((Dot{1, 1}), (Dot{1, 2}));
  EXPECT_EQ((Dot{2, 3}), (Dot{2, 3}));
  EXPECT_NE((Dot{2, 3}), (Dot{3, 2}));
}

TEST(Dot, ToStringMatchesPaperEventNames) {
  const auto name = [](dvv::core::ActorId id) {
    return std::string(1, static_cast<char>('A' + id));
  };
  EXPECT_EQ((Dot{0, 3}).to_string(name), "A3");
  EXPECT_EQ((Dot{1, 1}).to_string(name), "B1");
  EXPECT_EQ((Dot{7, 12}).to_string(), "712");  // default numeric namer
}

TEST(Dot, HashSpreadsAndIsStable) {
  DotHash hash;
  EXPECT_EQ(hash(Dot{1, 2}), hash(Dot{1, 2}));
  // Collision sanity over a dense grid: perfect hashing is not required,
  // but a 64-bit mix over 10k points should be collision-free.
  std::set<std::size_t> seen;
  for (dvv::core::ActorId a = 0; a < 100; ++a) {
    for (dvv::core::Counter c = 1; c <= 100; ++c) {
      seen.insert(hash(Dot{a, c}));
    }
  }
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(ActorIds, ClientSpaceIsDisjointFromServers) {
  EXPECT_FALSE(dvv::kv::is_client_actor(0));
  EXPECT_FALSE(dvv::kv::is_client_actor(999'999));
  EXPECT_TRUE(dvv::kv::is_client_actor(dvv::kv::client_actor(0)));
  EXPECT_TRUE(dvv::kv::is_client_actor(dvv::kv::client_actor(123456)));
  EXPECT_NE(dvv::kv::client_actor(0), dvv::kv::client_actor(1));
}

TEST(ActorIds, NamesAreReadable) {
  EXPECT_EQ(dvv::kv::actor_name(0), "A");
  EXPECT_EQ(dvv::kv::actor_name(25), "Z");
  EXPECT_EQ(dvv::kv::actor_name(26), "s26");
  EXPECT_EQ(dvv::kv::actor_name(dvv::kv::client_actor(3)), "c3");
}

}  // namespace
