// The oracle audits (experiments E2/E8/E9 in test form): every mechanism
// replays identical traces against the causal-history ground truth.
// Parameterized sweeps over seeds and workload shapes assert:
//   * DVV, DVVSet and client-VV are EXACT (zero lost updates, zero false
//     siblings) on every trace;
//   * server-VV is NOT exact once clients race (Fig. 1b at scale);
//   * pruned client-VV loses updates and/or fabricates siblings;
//   * DVV metadata stays bounded by the replication degree while
//     client-VV metadata grows with the number of clients.
#include "oracle/audit.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "kv/mechanism.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::ClientVvMechanism;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::DvvSetMechanism;
using dvv::kv::ServerVvMechanism;
using dvv::oracle::mirrored_run;
using dvv::workload::WorkloadSpec;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 16;
  return cfg;
}

/// A contentious workload: few hot keys, many clients, PARTIAL
/// replication and periodic anti-entropy — the regime where causality
/// mistakes surface.  Reads can miss writes (even the reader's own),
/// exactly like a Dynamo-style store between repair rounds.
WorkloadSpec contentious(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.keys = 8;
  spec.zipf_skew = 0.99;
  spec.clients = 16;
  spec.operations = 600;
  spec.read_before_write = 0.7;
  spec.replicate_probability = 0.6;
  spec.anti_entropy_every = 50;
  spec.seed = seed;
  return spec;
}

/// Same contention but with synchronous full replication: every write
/// reaches all R replicas before the next operation, so every read
/// includes the reader's own previous writes (read-your-writes holds).
WorkloadSpec full_replication(std::uint64_t seed) {
  WorkloadSpec spec = contentious(seed);
  spec.replicate_probability = 1.0;
  return spec;
}

/// Anomaly-surfacing variant for the negative tests: more blind writes
/// and frequent anti-entropy so false dominance is observed (the value
/// loss happens at sync; without syncs between overwrites the evidence
/// can be paved over before anyone looks).
WorkloadSpec racy(std::uint64_t seed) {
  WorkloadSpec spec = full_replication(seed);
  spec.read_before_write = 0.5;
  spec.anti_entropy_every = 10;
  return spec;
}

class OracleSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleSeedSweep, DvvIsExactEvenUnderPartialReplication) {
  const auto run = mirrored_run(contentious(GetParam()), config(), DvvMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
  EXPECT_GT(run.report.values_checked, 0u);
}

TEST_P(OracleSeedSweep, DvvSetIsExactEvenUnderPartialReplication) {
  const auto run =
      mirrored_run(contentious(GetParam()), config(), DvvSetMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
}

TEST_P(OracleSeedSweep, VveIsExactEvenUnderPartialReplication) {
  const auto run =
      mirrored_run(contentious(GetParam()), config(), dvv::kv::VveMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
}

TEST_P(OracleSeedSweep, ClientVvIsExactUnderFullReplication) {
  const auto run =
      mirrored_run(full_replication(GetParam()), config(), ClientVvMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
}

TEST_P(OracleSeedSweep, ServerVvIsNotExactUnderRacingClients) {
  const auto run = mirrored_run(racy(GetParam()), config(), ServerVvMechanism{});
  EXPECT_FALSE(run.report.exact())
      << "per-server VVs should mis-track racing client writes";
  EXPECT_GT(run.report.lost_updates(), 0u) << "Fig. 1b data loss at scale";
}

TEST_P(OracleSeedSweep, AggressivelyPrunedClientVvIsNotExact) {
  const auto run =
      mirrored_run(racy(GetParam()), config(), dvv::kv::pruned_client_vv(2));
  EXPECT_FALSE(run.report.exact())
      << "pruning to 2 entries under anonymous writers must break causality";
  EXPECT_GT(run.report.lost_updates() + run.report.false_siblings(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// The historical Riak-classic data-loss bug, reproduced: with per-client
// vectors the client's counter is derived from the context it read plus
// whatever the coordinator stores.  Under partial replication a client
// can read a replica that missed its own previous write; its next write
// then REUSES a (client, counter) pair for a different value, and the
// first sync deduplicates the two — silently destroying one of them.
// DVV fixes this structurally: dots are minted by the servers that
// store the data, so a counter can never be minted twice.
TEST(OracleNegative, ClientVvReusesCountersUnderPartialReplication) {
  std::uint64_t inexact_seeds = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u}) {
    const auto run =
        mirrored_run(contentious(seed), config(), ClientVvMechanism{});
    if (!run.report.exact()) ++inexact_seeds;
  }
  EXPECT_GT(inexact_seeds, 0u)
      << "counter reuse should surface on at least one contentious trace";
}

// ---- metadata bounds (the paper's size claim, asserted over real runs)

TEST(OracleBounds, DvvClockEntriesBoundedByReplication) {
  const auto cfg = config();
  for (const std::uint64_t seed : {7u, 77u, 777u}) {
    auto run = mirrored_run(contentious(seed), cfg, DvvMechanism{});
    const auto& mech = run.subject.mechanism();
    for (std::size_t s = 0; s < cfg.servers; ++s) {
      const auto& rep = run.subject.replica(s);
      for (const auto& key : rep.keys()) {
        const auto* stored = rep.find(key);
        ASSERT_NE(stored, nullptr);
        for (const auto& v : stored->versions()) {
          EXPECT_LE(v.clock.past().size(), cfg.replication)
              << "a DVV past wider than the preference list";
        }
        // Per-sibling cost: vector (<= R entries) + one dot.
        EXPECT_LE(mech.clock_entries(*stored),
                  mech.sibling_count(*stored) * (cfg.replication + 1));
      }
    }
  }
}

TEST(OracleBounds, DvvSetEntriesBoundedByReplication) {
  const auto cfg = config();
  auto run = mirrored_run(contentious(7), cfg, DvvSetMechanism{});
  for (std::size_t s = 0; s < cfg.servers; ++s) {
    const auto& rep = run.subject.replica(s);
    for (const auto& key : rep.keys()) {
      const auto* stored = rep.find(key);
      ASSERT_NE(stored, nullptr);
      EXPECT_LE(stored->clock_entries(), cfg.replication)
          << "one entry per coordinating server, at most R of them";
    }
  }
}

TEST(OracleBounds, ClientVvGrowsWithClientsDvvDoesNot) {
  const auto cfg = config();
  auto few_spec = contentious(7);
  few_spec.clients = 4;
  auto many_spec = contentious(7);
  many_spec.clients = 64;

  const auto dvv_few = mirrored_run(few_spec, cfg, DvvMechanism{});
  const auto dvv_many = mirrored_run(many_spec, cfg, DvvMechanism{});
  const auto cvv_few = mirrored_run(few_spec, cfg, ClientVvMechanism{});
  const auto cvv_many = mirrored_run(many_spec, cfg, ClientVvMechanism{});

  const double dvv_growth =
      static_cast<double>(dvv_many.subject_stats.final_clock_entries) /
      static_cast<double>(dvv_few.subject_stats.final_clock_entries);
  const double cvv_growth =
      static_cast<double>(cvv_many.subject_stats.final_clock_entries) /
      static_cast<double>(cvv_few.subject_stats.final_clock_entries);
  EXPECT_GT(cvv_growth, dvv_growth * 2)
      << "client-VV metadata must grow much faster with client count "
      << "(dvv x" << dvv_growth << ", client-vv x" << cvv_growth << ")";
}

// Gentle pruning that never actually fires is harmless — the cap itself
// is not the bug, exceeding it is.
TEST(OracleBounds, UnfiredPruningIsExact) {
  auto spec = full_replication(7);
  spec.clients = 3;
  spec.read_before_write = 1.0;  // no anonymous writers: at most 3
                                 // entries ever, cap 64 never triggers
  const auto run = mirrored_run(spec, config(), dvv::kv::pruned_client_vv(64));
  EXPECT_TRUE(run.report.exact());
}

// The truth cluster audited against itself is trivially exact — guards
// the audit plumbing against false positives.
TEST(OracleBounds, OracleSelfAuditIsClean) {
  const auto run =
      mirrored_run(contentious(3), config(), dvv::kv::HistoryMechanism{});
  EXPECT_TRUE(run.report.exact());
  EXPECT_GT(run.report.audits, 0u);
}

}  // namespace
