// Tests for the deterministic RNG and the Zipf sampler that drive every
// simulation.  Determinism is a correctness property here: the oracle
// depends on identical seeds producing identical traces.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using dvv::util::Rng;
using dvv::util::ZipfSampler;

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[static_cast<size_t>(i)]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  // Each bucket expects 10'000; allow +-5% (far beyond 6 sigma).
  for (const int c : counts) {
    EXPECT_GT(c, 9'500);
    EXPECT_LT(c, 10'500);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto x = rng.between(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.25, 0.01);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.exponential(2.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100'000, 2.5, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Zipf, UniformWhenSkewZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) {
    EXPECT_GT(c, 9'000);
    EXPECT_LT(c, 11'000);
  }
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(37);
  int head = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.sample(rng) < 10) ++head;
  }
  // With s=1 over 1000 items the top-10 mass is ~39%; uniform would be 1%.
  EXPECT_GT(head, kDraws / 4);
}

TEST(Zipf, SamplesStayInDomain) {
  ZipfSampler zipf(7, 1.2);
  Rng rng(41);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.sample(rng), 7u);
}

TEST(Zipf, RankProbabilitiesDecreaseMonotonically) {
  ZipfSampler zipf(8, 0.99);
  Rng rng(43);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 200'000; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 1; k < counts.size(); ++k) {
    EXPECT_GT(counts[k - 1], counts[k]) << "rank " << k;
  }
}

}  // namespace
