// Elastic ring membership (src/membership + kv/cluster integration).
//
// Covers the subsystem bottom-up: MembershipTable epoch minting,
// RebalanceEngine task lifecycle (kPending -> kTransferring -> kOwned,
// supersede semantics), the partitioner's PINNED vnode->owner golden
// assignments (a silent placement change would shuffle every key in
// every deployment — this test makes that a loud diff), and the cluster
// integration: join/leave/remove with Merkle-walk rebalancing,
// dual-apply during the transfer window, hint re-targeting across
// ownership changes, stale-epoch forwarding, and the rejoin
// clock-incarnation bump.
#include "membership/membership.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "kv/ring.hpp"
#include "obs/obs.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::kv::Ring;
using dvv::membership::MembershipTable;
using dvv::membership::PartitionTransfer;
using dvv::membership::RebalanceEngine;
using dvv::membership::TransferState;
using dvv::membership::TransferStats;

/// Restores the global metrics switch on scope exit so a failing
/// assertion cannot leak an enabled registry into later tests.
struct MetricsGuard {
  bool was_enabled = dvv::obs::registry().enabled();
  explicit MetricsGuard(bool on) { dvv::obs::set_metrics_enabled(on); }
  ~MetricsGuard() { dvv::obs::set_metrics_enabled(was_enabled); }
};

// ---- MembershipTable ------------------------------------------------------

TEST(MembershipTable, EpochsAreDenseAndRemembered) {
  MembershipTable table({0, 1, 2}, /*replication=*/2, /*vnodes=*/16);
  EXPECT_EQ(table.epoch(), 0u);
  EXPECT_EQ(table.members(), (std::vector<ReplicaId>{0, 1, 2}));
  EXPECT_TRUE(table.is_member(1));
  EXPECT_FALSE(table.is_member(3));

  const auto& joined = table.join(3);
  EXPECT_EQ(joined.epoch, 1u);
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.members(), (std::vector<ReplicaId>{0, 1, 2, 3}));

  const auto& left = table.leave(0);
  EXPECT_EQ(left.epoch, 2u);
  EXPECT_EQ(table.members(), (std::vector<ReplicaId>{1, 2, 3}));

  // The table never forgets: every minted epoch stays addressable, and
  // each snapshot still routes over its own member list.
  EXPECT_EQ(table.at(0).ring.members(), (std::vector<ReplicaId>{0, 1, 2}));
  EXPECT_EQ(table.at(1).ring.members(), (std::vector<ReplicaId>{0, 1, 2, 3}));
  EXPECT_EQ(table.at(2).ring.members(), (std::vector<ReplicaId>{1, 2, 3}));
}

TEST(MembershipTable, WasMemberTracksDepartedIdsOnly) {
  MembershipTable table({0, 1, 2}, 2, 16);
  EXPECT_FALSE(table.was_member(0));  // current member, not "was"
  EXPECT_FALSE(table.was_member(7));  // never seen
  table.leave(0);
  EXPECT_TRUE(table.was_member(0));   // departed: rejoin must bump
  table.join(0);
  EXPECT_FALSE(table.was_member(0));  // back in: current again
}

// ---- RebalanceEngine ------------------------------------------------------

TEST(RebalanceEngine, TaskFlipsOnlyAfterEverySourceWalked) {
  RebalanceEngine engine;
  PartitionTransfer task;
  task.partition = 7;
  task.owner = 4;
  task.pending_sources = {0, 1};
  engine.plan(/*target_epoch=*/1, {task});
  ASSERT_TRUE(engine.active());
  EXPECT_EQ(engine.target_epoch(), 1u);
  EXPECT_EQ(engine.pending_work().size(), 2u);

  TransferStats cost;
  cost.keys_shipped = 3;
  cost.wire_bytes = 100;
  EXPECT_FALSE(engine.note_walked(7, 4, 0, cost));
  EXPECT_EQ(engine.transfers()[0].state, TransferState::kTransferring);
  EXPECT_TRUE(engine.take_flippable().empty()) << "one source still owed";

  EXPECT_TRUE(engine.note_walked(7, 4, 1, cost));
  EXPECT_EQ(engine.transfers()[0].state, TransferState::kOwned);
  EXPECT_EQ(engine.take_flippable(), (std::vector<std::uint64_t>{7}));
  EXPECT_TRUE(engine.take_flippable().empty()) << "flips are taken once";

  ASSERT_TRUE(engine.complete());
  EXPECT_EQ(engine.stats().totals.keys_shipped, 6u);
  EXPECT_EQ(engine.stats().totals.wire_bytes, 200u);
  EXPECT_EQ(engine.stats().transfers_completed, 1u);
  engine.finish();
  EXPECT_FALSE(engine.active());
}

TEST(RebalanceEngine, NewPlanSupersedesProgress) {
  RebalanceEngine engine;
  PartitionTransfer task;
  task.partition = 3;
  task.owner = 2;
  task.pending_sources = {0};
  engine.plan(1, {task});
  EXPECT_TRUE(engine.note_walked(3, 2, 0, {}));

  // A membership change mid-rebalance re-plans from scratch: the owed
  // walks are the NEW plan's, and old flip progress is discarded.
  PartitionTransfer again;
  again.partition = 3;
  again.owner = 2;
  again.pending_sources = {0, 1};
  engine.plan(2, {again});
  EXPECT_TRUE(engine.active());
  EXPECT_EQ(engine.target_epoch(), 2u);
  EXPECT_EQ(engine.pending_work().size(), 2u);
  EXPECT_FALSE(engine.complete());
}

// ---- partitioner golden pins ---------------------------------------------
//
// The exact vnode->owner assignments for fixed member lists.  These are
// load-bearing: every deployed ring routes by them, and a "harmless"
// change to the hash, the vnode naming scheme, or the tie-break order
// would silently reshuffle every key in every running cluster.  Values
// were recorded from the implementation; a diff here means the
// placement function changed and MUST be treated as a breaking change.

TEST(RingGolden, PinnedAssignmentsForSeedMemberList) {
  const Ring ring({0, 1, 2, 3, 4}, 3, 32);
  const std::vector<std::vector<ReplicaId>> expected = {
      {4, 1, 2}, {3, 1, 4}, {0, 2, 1}, {2, 3, 4},
      {4, 0, 2}, {1, 3, 4}, {2, 3, 1}, {2, 1, 3},
  };
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(ring.preference_list("key-" + std::to_string(k)), expected[k])
        << "key-" << k;
  }
}

TEST(RingGolden, PinnedAssignmentsAfterJoinAndSparseList) {
  const Ring joined({0, 1, 2, 3, 4, 5}, 3, 32);
  const std::vector<std::vector<ReplicaId>> expected_joined = {
      {4, 1, 5}, {5, 3, 1}, {0, 2, 5}, {2, 3, 4},
      {5, 4, 0}, {5, 1, 3}, {2, 5, 3}, {2, 1, 5},
  };
  for (std::size_t k = 0; k < expected_joined.size(); ++k) {
    EXPECT_EQ(joined.preference_list("key-" + std::to_string(k)),
              expected_joined[k])
        << "key-" << k;
  }

  // Churn leaves the member list sparse; placement must not assume
  // contiguous ids.
  const Ring sparse({1, 3, 4, 6}, 2, 32);
  const std::vector<std::vector<ReplicaId>> expected_sparse = {
      {4, 1}, {3, 1}, {6, 1}, {6, 3}, {4, 6}, {1, 3},
  };
  for (std::size_t k = 0; k < expected_sparse.size(); ++k) {
    EXPECT_EQ(sparse.preference_list("key-" + std::to_string(k)),
              expected_sparse[k])
        << "key-" << k;
  }

  EXPECT_EQ(Ring::hash("key-0"), 809430462356971387ULL);
  EXPECT_EQ(Ring::hash("vnode:3:7"), 9171782124975792365ULL);
}

TEST(RingGolden, JoinMovesOnlyRangesClaimedByTheJoiner) {
  // Minimal movement: a member's vnode points depend only on its own
  // id, so adding node 5 can only DISPLACE owners in favor of 5 — a
  // key's new owner set is a subset of (old owners + the joiner).
  const Ring before({0, 1, 2, 3, 4}, 3, 32);
  const Ring after({0, 1, 2, 3, 4, 5}, 3, 32);
  std::size_t moved = 0;
  for (int k = 0; k < 500; ++k) {
    const auto key = "key-" + std::to_string(k);
    const auto old_pref = before.preference_list(key);
    const std::set<ReplicaId> old_set(old_pref.begin(), old_pref.end());
    for (const ReplicaId owner : after.preference_list(key)) {
      if (owner == 5) {
        ++moved;
        continue;
      }
      EXPECT_TRUE(old_set.contains(owner))
          << key << " gained owner " << owner << " unrelated to the join";
    }
  }
  EXPECT_GT(moved, 0u) << "the joiner claimed nothing";
}

// ---- cluster integration --------------------------------------------------

ClusterConfig elastic_config(std::size_t servers, std::size_t capacity,
                             std::size_t replication = 3) {
  ClusterConfig cfg;
  cfg.servers = servers;
  cfg.capacity = capacity;
  cfg.replication = replication;
  cfg.vnodes = 32;
  return cfg;
}

/// Seeds `n` keys through each key's slot-0 coordinator; returns the
/// written values.
std::map<Key, std::string> seed_keys(Cluster<DvvMechanism>& cluster,
                                     std::size_t n) {
  std::map<Key, std::string> written;
  for (std::size_t k = 0; k < n; ++k) {
    const Key key = "mem-" + std::to_string(k);
    const std::string value = "v" + std::to_string(k);
    cluster.put(key, cluster.preference_list(key)[0], dvv::kv::client_actor(0),
                {}, value, cluster.preference_list(key));
    written.emplace(key, value);
  }
  return written;
}

/// Every key readable, with the expected value, from EVERY current
/// preference member — the post-rebalance full-replication check.
void expect_fully_replicated(Cluster<DvvMechanism>& cluster,
                             const std::map<Key, std::string>& written) {
  for (const auto& [key, value] : written) {
    for (const ReplicaId r : cluster.preference_list(key)) {
      const auto got = cluster.get(key, r);
      ASSERT_TRUE(got.found) << key << " missing at replica " << r;
      ASSERT_EQ(got.values.size(), 1u) << key;
      EXPECT_EQ(got.values[0], value) << key << " at replica " << r;
    }
  }
}

TEST(MembershipCluster, JoinRebalancesAndRoutesToTheNewOwner) {
  Cluster<DvvMechanism> cluster(elastic_config(4, 6), {});
  EXPECT_EQ(cluster.ring_epoch(), 0u);
  EXPECT_EQ(cluster.members(), (std::vector<ReplicaId>{0, 1, 2, 3}));
  const auto written = seed_keys(cluster, 64);

  cluster.join_node(4);
  EXPECT_EQ(cluster.ring_epoch(), 1u);
  EXPECT_TRUE(cluster.rebalancing()) << "data must move before routing flips";
  EXPECT_EQ(cluster.members(), (std::vector<ReplicaId>{0, 1, 2, 3, 4}));

  const auto stats = cluster.complete_rebalance();
  EXPECT_FALSE(cluster.rebalancing());
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_GT(stats.totals.keys_shipped, 0u) << "the joiner claimed key ranges";

  // The new member now serves reads for the ranges it claimed.
  bool node4_owns_something = false;
  for (const auto& [key, value] : written) {
    const auto pref = cluster.preference_list(key);
    node4_owns_something |=
        std::find(pref.begin(), pref.end(), ReplicaId{4}) != pref.end();
  }
  EXPECT_TRUE(node4_owns_something);
  expect_fully_replicated(cluster, written);

  // Nothing stranded: steady-state anti-entropy finds a fixed point.
  EXPECT_EQ(cluster.anti_entropy_digest().stats.keys_shipped, 0u);
}

TEST(MembershipCluster, WritesDualApplyDuringTheTransferWindow) {
  Cluster<DvvMechanism> cluster(elastic_config(4, 6), {});
  seed_keys(cluster, 32);
  cluster.join_node(4);
  ASSERT_TRUE(cluster.rebalancing());

  // Find a key the joiner will own; a write accepted mid-transfer must
  // land on the new owner too (or the flip could lose it).
  std::optional<Key> claimed;
  for (std::size_t k = 0; k < 256 && !claimed.has_value(); ++k) {
    const Key key = "dual-" + std::to_string(k);
    const auto targets = cluster.replication_targets(key);
    if (std::find(targets.begin(), targets.end(), ReplicaId{4}) !=
        targets.end()) {
      claimed = key;
    }
  }
  ASSERT_TRUE(claimed.has_value());
  const auto pref = cluster.preference_list(*claimed);
  EXPECT_EQ(std::find(pref.begin(), pref.end(), ReplicaId{4}), pref.end())
      << "routing must not flip before the walks complete";

  cluster.put(*claimed, pref[0], dvv::kv::client_actor(1), {}, "mid-transfer",
              cluster.replication_targets(*claimed));
  const auto at_new_owner = cluster.get(*claimed, 4);
  ASSERT_TRUE(at_new_owner.found) << "dual-apply missed the claiming owner";
  EXPECT_EQ(at_new_owner.values[0], "mid-transfer");

  (void)cluster.complete_rebalance();
  EXPECT_EQ(cluster.anti_entropy_digest().stats.keys_shipped, 0u);
}

TEST(MembershipCluster, GracefulLeaveDrainsTheLeaverBeforeTheFlip) {
  Cluster<DvvMechanism> cluster(elastic_config(5, 5), {});
  const auto written = seed_keys(cluster, 64);

  cluster.leave_node(0);
  const auto stats = cluster.complete_rebalance();
  EXPECT_EQ(cluster.members(), (std::vector<ReplicaId>{1, 2, 3, 4}));
  EXPECT_GT(stats.totals.keys_shipped, 0u)
      << "the leaver's ranges must drain to the remaining owners";

  for (const auto& [key, value] : written) {
    const auto pref = cluster.preference_list(key);
    EXPECT_EQ(std::find(pref.begin(), pref.end(), ReplicaId{0}), pref.end());
  }
  expect_fully_replicated(cluster, written);
  EXPECT_EQ(cluster.anti_entropy_digest().stats.keys_shipped, 0u);
}

TEST(MembershipCluster, CrashRemovalRebuildsReplicationFromSurvivors) {
  Cluster<DvvMechanism> cluster(elastic_config(5, 5), {});
  const auto written = seed_keys(cluster, 64);

  // Node 2 is gone for good: dead, unreachable, unwalkable.  The
  // remaining owners rebuild each partition's replication from each
  // other — every key must end fully replicated WITHOUT node 2.
  cluster.replica(2).set_alive(false);
  cluster.remove_node(2);
  (void)cluster.complete_rebalance();

  EXPECT_EQ(cluster.members(), (std::vector<ReplicaId>{0, 1, 3, 4}));
  expect_fully_replicated(cluster, written);
  EXPECT_EQ(cluster.anti_entropy_digest().stats.keys_shipped, 0u);
}

TEST(MembershipCluster, RejoinBumpsTheClockIncarnation) {
  const MetricsGuard metrics(true);
  Cluster<DvvMechanism> cluster(elastic_config(5, 5), {});
  seed_keys(cluster, 16);

  const std::uint64_t before = cluster.replica(2).incarnation();
  const std::uint64_t rejoins_before =
      dvv::obs::membership_metrics().rejoin_incarnations.value();

  cluster.leave_node(2);
  (void)cluster.complete_rebalance();
  EXPECT_EQ(cluster.replica(2).incarnation(), before)
      << "a graceful leave alone must not burn an incarnation";

  // Rejoining with history: pre-departure dots must never be reused,
  // so the id passes through the incarnation bump on the way back in.
  cluster.join_node(2);
  (void)cluster.complete_rebalance();
  EXPECT_EQ(cluster.replica(2).incarnation(), before + 1);
  EXPECT_EQ(dvv::obs::membership_metrics().rejoin_incarnations.value(),
            rejoins_before + 1);

  // A FRESH id (never a member) joins without a bump.
  Cluster<DvvMechanism> fresh(elastic_config(4, 5), {});
  const std::uint64_t fresh_before = fresh.replica(4).incarnation();
  fresh.join_node(4);
  EXPECT_EQ(fresh.replica(4).incarnation(), fresh_before);
}

TEST(MembershipCluster, StaleOwnerHintIsRedirectedNotMisdelivered) {
  const MetricsGuard metrics(true);
  Cluster<DvvMechanism> cluster(elastic_config(5, 5), {});

  // Find a key with a non-coordinator preference member to play the
  // dying owner.
  const Key key = "hint-victim";
  const auto pref = cluster.preference_list(key);
  ASSERT_EQ(pref.size(), 3u);
  const ReplicaId victim = pref[2];

  cluster.replica(victim).set_alive(false);
  const auto receipt = cluster.put_with_handoff(
      key, pref[0], dvv::kv::client_actor(0), {}, "parked-write");
  ASSERT_EQ(receipt.hinted, 1u) << "the dead owner's copy must park";
  ASSERT_EQ(cluster.hinted_count(), 1u);

  // Ownership moves while the hint is parked: the victim is
  // crash-removed, so it is no longer in ANY preference list.
  cluster.remove_node(victim);
  (void)cluster.complete_rebalance();
  const auto new_pref = cluster.preference_list(key);
  ASSERT_EQ(std::find(new_pref.begin(), new_pref.end(), victim),
            new_pref.end());

  // Delivery must REDIRECT to a current owner — not push the write to
  // the departed replica, where steady-state AAE would never repair it.
  const std::uint64_t retargeted_before =
      dvv::obs::membership_metrics().hints_retargeted.value();
  const std::size_t delivered = cluster.deliver_hints();
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(cluster.hinted_count(), 0u);
  EXPECT_EQ(dvv::obs::membership_metrics().hints_retargeted.value(),
            retargeted_before + 1);

  EXPECT_FALSE(cluster.get(key, victim).found)
      << "the write was misdelivered to the departed replica";
  bool on_a_current_owner = false;
  for (const ReplicaId r : new_pref) {
    const auto got = cluster.get(key, r);
    if (got.found && got.values[0] == "parked-write") on_a_current_owner = true;
  }
  EXPECT_TRUE(on_a_current_owner);

  // And the redirected copy is indistinguishable from a direct one:
  // a digest pass spreads it to the rest of the preference list and
  // reaches a fixed point.
  (void)cluster.anti_entropy_digest();
  EXPECT_EQ(cluster.anti_entropy_digest().stats.keys_shipped, 0u);
  expect_fully_replicated(cluster, {{key, "parked-write"}});
}

TEST(MembershipCluster, StaleEpochRequestIsForwardedAndCounted) {
  const MetricsGuard metrics(true);
  ClusterConfig cfg = elastic_config(4, 6);
  cfg.transport.kind = dvv::net::TransportKind::kSim;
  cfg.transport.sim.auto_settle = true;
  Cluster<DvvMechanism> cluster(cfg, {});
  seed_keys(cluster, 16);

  // Provisioned node 5 misses the join announcement behind a cut link,
  // so its epoch knowledge stays at 0 while the ring moves to 1.
  cluster.partition({{0, 1, 2, 3, 4}, {5}}, "announce-loss");
  cluster.join_node(4);
  (void)cluster.complete_rebalance();
  cluster.heal();
  ASSERT_EQ(cluster.ring_epoch(), 1u);
  ASSERT_EQ(cluster.known_epoch(5), 0u);

  // A request arriving at the lagging node forwards to a current owner
  // and is counted as a stale-epoch forward.
  const Key key = "mem-0";
  const std::uint64_t stale_before =
      dvv::obs::membership_metrics().stale_epoch_forwarded.value();
  const auto routed = cluster.route_request(key, 5);
  ASSERT_TRUE(routed.has_value());
  const auto pref = cluster.preference_list(key);
  EXPECT_NE(std::find(pref.begin(), pref.end(), *routed), pref.end());
  EXPECT_EQ(dvv::obs::membership_metrics().stale_epoch_forwarded.value(),
            stale_before + 1);

  // A current-epoch owner coordinates in place: no forward, no count.
  const auto direct = cluster.route_request(key, pref[0]);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(*direct, pref[0]);
  EXPECT_EQ(dvv::obs::membership_metrics().stale_epoch_forwarded.value(),
            stale_before + 1);
}

TEST(MembershipCluster, EmptyClusterTransitionsFlipImmediately) {
  // No data, no transfers: the epoch mints, the plan is vacuously
  // complete, and routing flips in the same call.
  Cluster<DvvMechanism> cluster(elastic_config(3, 4), {});
  cluster.join_node(3);
  EXPECT_FALSE(cluster.rebalancing());
  EXPECT_EQ(cluster.ring_epoch(), 1u);
  EXPECT_EQ(cluster.members(), (std::vector<ReplicaId>{0, 1, 2, 3}));
  seed_keys(cluster, 8);
  EXPECT_EQ(cluster.anti_entropy_digest().stats.keys_shipped, 0u);
}

}  // namespace
