// Eventual-convergence property suite, parameterized over cluster
// geometry: after any workload followed by anti-entropy, all preference
// replicas of every key hold identical states, the final states are
// independent of replication luck, and repeated anti-entropy is a fixed
// point.  Runs across (servers, replication) combinations to catch
// geometry-dependent bugs (R=1 degenerate case, R=servers, tiny rings).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "kv/mechanism.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::workload::WorkloadSpec;

using Geometry = std::tuple<std::size_t, std::size_t>;  // servers, replication

class GeometrySweep : public ::testing::TestWithParam<Geometry> {
 protected:
  ClusterConfig config() const {
    ClusterConfig cfg;
    cfg.servers = std::get<0>(GetParam());
    cfg.replication = std::get<1>(GetParam());
    cfg.vnodes = 16;
    return cfg;
  }

  WorkloadSpec spec() const {
    WorkloadSpec s;
    s.keys = 12;
    s.clients = 8;
    s.operations = 400;
    s.read_before_write = 0.7;
    s.replicate_probability = 0.5;  // heavy divergence
    s.seed = 0xC0 + std::get<0>(GetParam()) * 16 + std::get<1>(GetParam());
    return s;
  }

  template <typename M>
  void expect_converged(Cluster<M>& cluster) const {
    const auto& mech = cluster.mechanism();
    for (std::size_t s = 0; s < config().servers; ++s) {
      for (const auto& key : cluster.replica(s).keys()) {
        std::multiset<std::string> reference;
        bool first = true;
        for (const auto r : cluster.preference_list(key)) {
          std::multiset<std::string> values;
          if (const auto* stored = cluster.replica(r).find(key)) {
            for (auto& v : mech.values_of(*stored)) values.insert(v);
          }
          if (first) {
            reference = values;
            first = false;
          } else {
            ASSERT_EQ(values, reference)
                << "key " << key << " replica " << r << " diverged";
          }
        }
        ASSERT_FALSE(reference.empty()) << "converged to nothing for " << key;
      }
    }
  }
};

TEST_P(GeometrySweep, AntiEntropyConvergesAllGeometries) {
  const auto trace = dvv::workload::generate_trace(spec(), config().replication);
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::workload::replay(cluster, trace);
  cluster.anti_entropy();
  expect_converged(cluster);
}

TEST_P(GeometrySweep, AntiEntropyIsAFixedPoint) {
  const auto trace = dvv::workload::generate_trace(spec(), config().replication);
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::workload::replay(cluster, trace);
  cluster.anti_entropy();
  const auto once = cluster.footprint();
  cluster.anti_entropy();
  cluster.anti_entropy();
  const auto thrice = cluster.footprint();
  EXPECT_EQ(once.siblings, thrice.siblings);
  EXPECT_EQ(once.metadata_bytes, thrice.metadata_bytes);
  EXPECT_EQ(once.total_bytes, thrice.total_bytes);
}

TEST_P(GeometrySweep, ReplicationLuckDoesNotChangeConvergedState) {
  // Same logical operations, different replication delivery (p=0.5 vs
  // p=1.0 uses different RNG draws, so instead we compare p=0.5 after
  // repair with itself under a permuted anti-entropy schedule: inject
  // extra anti-entropy rounds mid-trace and verify the final converged
  // value sets per key are identical).
  auto lazy_spec = spec();
  auto eager_spec = spec();
  eager_spec.anti_entropy_every = 25;  // repairs all along

  const auto lazy_trace =
      dvv::workload::generate_trace(lazy_spec, config().replication);
  const auto eager_trace =
      dvv::workload::generate_trace(eager_spec, config().replication);

  Cluster<DvvMechanism> lazy(config(), {});
  Cluster<DvvMechanism> eager(config(), {});
  dvv::workload::replay(lazy, lazy_trace);
  dvv::workload::replay(eager, eager_trace);
  lazy.anti_entropy();
  eager.anti_entropy();
  expect_converged(lazy);
  expect_converged(eager);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(Geometry{1, 1}, Geometry{3, 1}, Geometry{3, 3},
                      Geometry{5, 2}, Geometry{6, 3}, Geometry{8, 5},
                      Geometry{4, 4}),
    [](const ::testing::TestParamInfo<Geometry>& param_info) {
      return "s" + std::to_string(std::get<0>(param_info.param)) + "r" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
