// Unit tests for core::DottedVersionVector — the paper's contribution.
// Covers the O(1) comparison rule, the gap-above-the-vector property no
// plain VV can express, the Fig. 1c literal clocks, and a randomized
// equivalence check between the fast dot rule and exact causal-history
// comparison on workflow-generated clocks.
#include "core/dotted_version_vector.hpp"

#include <gtest/gtest.h>

#include "core/causal_history.hpp"
#include "core/causality.hpp"
#include "core/dvv_kernel.hpp"
#include "core/version_vector.hpp"
#include "util/rng.hpp"

namespace {

using dvv::core::CausalHistory;
using dvv::core::Dot;
using dvv::core::DottedVersionVector;
using dvv::core::DvvSiblings;
using dvv::core::Ordering;
using dvv::core::VersionVector;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;

TEST(DottedVersionVector, DefaultIsInvalidDotEmptyPast) {
  const DottedVersionVector d;
  EXPECT_FALSE(dvv::core::valid(d.dot()));
  EXPECT_TRUE(d.past().empty());
}

TEST(DottedVersionVector, CausalHistoryIsDotPlusDownSet) {
  const DottedVersionVector d(Dot{kA, 4}, VersionVector{{kA, 2}, {kB, 1}});
  const CausalHistory h = d.causal_history();
  // {A1, A2, B1} from the vector, plus the dot A4.  A3 is the gap.
  EXPECT_EQ(h.size(), 4u);
  EXPECT_TRUE(h.contains(Dot{kA, 1}));
  EXPECT_TRUE(h.contains(Dot{kA, 2}));
  EXPECT_FALSE(h.contains(Dot{kA, 3}));
  EXPECT_TRUE(h.contains(Dot{kA, 4}));
  EXPECT_TRUE(h.contains(Dot{kB, 1}));
}

TEST(DottedVersionVector, HistoryContainsChecksDotAndVector) {
  const DottedVersionVector d(Dot{kA, 4}, VersionVector{{kA, 2}});
  EXPECT_TRUE(d.history_contains(Dot{kA, 4}));   // the dot itself
  EXPECT_TRUE(d.history_contains(Dot{kA, 2}));   // below the vector
  EXPECT_FALSE(d.history_contains(Dot{kA, 3}));  // the gap
  EXPECT_FALSE(d.history_contains(Dot{kB, 1}));
}

// The paper's §2 comparison rule on its own example:
// (A,3)[1,0] || (A,2)[1,0].
TEST(DottedVersionVector, Fig1cConcurrentSiblings) {
  const DottedVersionVector second(Dot{kA, 2}, VersionVector{{kA, 1}});
  const DottedVersionVector third(Dot{kA, 3}, VersionVector{{kA, 1}});
  EXPECT_EQ(third.compare(second), Ordering::kConcurrent);
  EXPECT_EQ(second.compare(third), Ordering::kConcurrent);
}

TEST(DottedVersionVector, BeforeWhenDotInsideOtherPast) {
  const DottedVersionVector a(Dot{kA, 1}, VersionVector{});
  const DottedVersionVector b(Dot{kA, 2}, VersionVector{{kA, 1}});
  EXPECT_EQ(a.compare(b), Ordering::kBefore);
  EXPECT_EQ(b.compare(a), Ordering::kAfter);
}

TEST(DottedVersionVector, EqualDotsMeanEqualVersions) {
  const DottedVersionVector a(Dot{kA, 2}, VersionVector{{kA, 1}});
  const DottedVersionVector b(Dot{kA, 2}, VersionVector{{kA, 1}});
  EXPECT_EQ(a.compare(b), Ordering::kEqual);
}

TEST(DottedVersionVector, CrossServerConcurrency) {
  // Writes coordinated by different servers, neither having seen the other.
  const DottedVersionVector a(Dot{kA, 1}, VersionVector{});
  const DottedVersionVector b(Dot{kB, 1}, VersionVector{});
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
}

TEST(DottedVersionVector, CrossServerDominance) {
  // B's write read A's write first: (B,1)[1,0] dominates (A,1)[].
  const DottedVersionVector a(Dot{kA, 1}, VersionVector{});
  const DottedVersionVector b(Dot{kB, 1}, VersionVector{{kA, 1}});
  EXPECT_EQ(a.compare(b), Ordering::kBefore);
}

TEST(DottedVersionVector, ObsoletedByContext) {
  const DottedVersionVector v(Dot{kA, 2}, VersionVector{{kA, 1}});
  EXPECT_TRUE(v.obsoleted_by(VersionVector{{kA, 2}}));   // context saw A2
  EXPECT_TRUE(v.obsoleted_by(VersionVector{{kA, 5}}));
  EXPECT_FALSE(v.obsoleted_by(VersionVector{{kA, 1}}));  // context too old
  EXPECT_FALSE(v.obsoleted_by(VersionVector{{kB, 9}}));
}

TEST(DottedVersionVector, FoldIntoProducesDominatingContext) {
  const DottedVersionVector v(Dot{kA, 4}, VersionVector{{kA, 2}, {kB, 1}});
  VersionVector ctx;
  v.fold_into(ctx);
  EXPECT_EQ(ctx.get(kA), 4u);  // raised to the dot (overapproximates the gap)
  EXPECT_EQ(ctx.get(kB), 1u);
  EXPECT_TRUE(v.obsoleted_by(ctx));
}

TEST(DottedVersionVector, EntryCountIsVectorPlusDot) {
  const DottedVersionVector v(Dot{kA, 4}, VersionVector{{kA, 2}, {kB, 1}});
  EXPECT_EQ(v.entry_count(), 3u);
  const DottedVersionVector blind(Dot{kA, 1}, VersionVector{});
  EXPECT_EQ(blind.entry_count(), 1u);
}

TEST(DottedVersionVector, ToStringDenseMatchesPaperNotation) {
  const DottedVersionVector v(Dot{kA, 3}, VersionVector{{kA, 1}});
  const auto name = [](dvv::core::ActorId id) {
    return std::string(1, static_cast<char>('A' + id));
  };
  EXPECT_EQ(v.to_string_dense({kA, kB}, name), "(A,3)[1,0]");
}

// Property test: on clocks produced by the real storage workflow, the
// O(1) dot rule must agree with exact causal-history comparison — the
// paper's "it follows immediately" claim, checked mechanically.  We
// simulate one key on a few servers with racing clients and compare
// every sibling pair under both definitions.
TEST(DottedVersionVector, FastRuleAgreesWithCausalHistoriesOnWorkflowClocks) {
  dvv::util::Rng rng(0xd077ed);
  for (int trial = 0; trial < 300; ++trial) {
    constexpr std::size_t kServers = 3;
    std::array<DvvSiblings<int>, kServers> replica;
    // Client contexts: some fresh, some stale, some empty.
    std::vector<VersionVector> contexts(4);
    int value = 0;

    const auto steps = 3 + rng.below(12);
    for (std::uint64_t s = 0; s < steps; ++s) {
      const auto server = rng.index(kServers);
      const auto client = rng.index(contexts.size());
      switch (rng.below(3)) {
        case 0:  // client reads from a replica
          contexts[client] = replica[server].context();
          break;
        case 1:  // client writes through a replica with its current context
          replica[server].update(static_cast<dvv::core::ActorId>(server),
                                 contexts[client], value++);
          break;
        case 2: {  // anti-entropy between two replicas
          const auto other = rng.index(kServers);
          replica[server].sync(replica[other]);
          break;
        }
      }
    }

    // Gather every version alive anywhere; compare all pairs both ways.
    std::vector<DottedVersionVector> clocks;
    for (const auto& r : replica) {
      for (const auto& v : r.versions()) clocks.push_back(v.clock);
    }
    for (const auto& x : clocks) {
      for (const auto& y : clocks) {
        const Ordering fast = x.compare(y);
        const Ordering exact = x.causal_history().compare(y.causal_history());
        EXPECT_EQ(fast, exact)
            << "fast " << to_string(fast) << " vs exact " << to_string(exact)
            << " for " << x.to_string() << " vs " << y.to_string()
            << " (trial " << trial << ")";
      }
    }
  }
}

}  // namespace
