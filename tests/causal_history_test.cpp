// Unit tests for core::CausalHistory — the paper's §1 ground truth.
// Includes the literal Figure 1a history values.
#include "core/causal_history.hpp"

#include <gtest/gtest.h>

#include "core/causality.hpp"

namespace {

using dvv::core::CausalHistory;
using dvv::core::Dot;
using dvv::core::Ordering;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;

std::string name(dvv::core::ActorId id) {
  return std::string(1, static_cast<char>('A' + id));
}

TEST(CausalHistory, EmptyHistory) {
  CausalHistory h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.contains(Dot{kA, 1}));
}

TEST(CausalHistory, InsertIsIdempotentAndSorted) {
  CausalHistory h;
  h.insert(Dot{kB, 1});
  h.insert(Dot{kA, 2});
  h.insert(Dot{kA, 1});
  h.insert(Dot{kA, 2});  // duplicate
  EXPECT_EQ(h.size(), 3u);
  EXPECT_TRUE(h.contains(Dot{kA, 1}));
  EXPECT_TRUE(h.contains(Dot{kA, 2}));
  EXPECT_TRUE(h.contains(Dot{kB, 1}));
  // Sorted storage: (A,1), (A,2), (B,1).
  EXPECT_EQ(h.dots()[0], (Dot{kA, 1}));
  EXPECT_EQ(h.dots()[2], (Dot{kB, 1}));
}

TEST(CausalHistory, InitializerListDedupes) {
  const CausalHistory h{Dot{kA, 1}, Dot{kA, 1}, Dot{kB, 2}};
  EXPECT_EQ(h.size(), 2u);
}

TEST(CausalHistory, MergeIsSetUnion) {
  CausalHistory a{Dot{kA, 1}, Dot{kA, 2}};
  const CausalHistory b{Dot{kA, 2}, Dot{kB, 1}};
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.contains(Dot{kB, 1}));
}

TEST(CausalHistory, SubsetOf) {
  const CausalHistory small{Dot{kA, 1}};
  const CausalHistory big{Dot{kA, 1}, Dot{kA, 2}};
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
  EXPECT_TRUE(CausalHistory{}.subset_of(small));
}

TEST(CausalHistory, CompareViaSetInclusion) {
  const CausalHistory a1{Dot{kA, 1}};
  const CausalHistory a12{Dot{kA, 1}, Dot{kA, 2}};
  EXPECT_EQ(a1.compare(a12), Ordering::kBefore);
  EXPECT_EQ(a12.compare(a1), Ordering::kAfter);
  EXPECT_EQ(a1.compare(a1), Ordering::kEqual);
}

// The paper's §1 example: Ha || Hb iff neither includes the other.
TEST(CausalHistory, ConcurrencyNeitherIncludesOther) {
  const CausalHistory a{Dot{kA, 1}, Dot{kA, 3}};
  const CausalHistory b{Dot{kA, 1}, Dot{kA, 2}};
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
  EXPECT_EQ(b.compare(a), Ordering::kConcurrent);
}

// Figure 1a, server A, step by step: {A1} -> {A1,A2} and the racing
// write {A1,A3}; after server B's client writes: {A1,A2,B1}; the final
// reconciling write reads everything and produces {A1,A2,A3,A4}.
TEST(CausalHistory, Fig1aLiteralHistories) {
  const CausalHistory v1{Dot{kA, 1}};
  const CausalHistory v2{Dot{kA, 1}, Dot{kA, 2}};
  const CausalHistory v3{Dot{kA, 1}, Dot{kA, 3}};
  const CausalHistory v4{Dot{kA, 1}, Dot{kA, 2}, Dot{kB, 1}};
  const CausalHistory v5{Dot{kA, 1}, Dot{kA, 2}, Dot{kA, 3}, Dot{kA, 4}};

  EXPECT_EQ(v1.compare(v2), Ordering::kBefore);
  EXPECT_EQ(v1.compare(v3), Ordering::kBefore);
  EXPECT_EQ(v3.compare(v2), Ordering::kConcurrent);  // {A1,A3} || {A1,A2}
  EXPECT_EQ(v3.compare(v4), Ordering::kConcurrent);  // {A1,A3} || {A1,A2,B1}
  EXPECT_EQ(v2.compare(v4), Ordering::kBefore);
  EXPECT_EQ(v3.compare(v5), Ordering::kBefore);  // the final write supersedes both
  EXPECT_EQ(v2.compare(v5), Ordering::kBefore);

  EXPECT_EQ(v4.to_string(name), "{A1,A2,B1}");
  EXPECT_EQ(v5.to_string(name), "{A1,A2,A3,A4}");
}

TEST(CausalHistory, EqualityIsContentBased) {
  const CausalHistory a{Dot{kA, 1}, Dot{kB, 1}};
  const CausalHistory b{Dot{kB, 1}, Dot{kA, 1}};
  EXPECT_EQ(a, b);
  const CausalHistory c{Dot{kA, 1}};
  EXPECT_NE(a, c);
}

}  // namespace
