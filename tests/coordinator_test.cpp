// Unit tests for the per-request quorum coordination engine
// (src/kv/coordinator.hpp): request-id slot/generation recycling,
// partial-quorum completion, tick deadlines, and — the heart of it —
// reply hygiene: duplicate replies count once, late replies cannot
// touch finished state, and stale replies cannot corrupt a reused
// request slot.
#include "kv/coordinator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"

namespace {

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::CoordOutcome;
using dvv::kv::DvvMechanism;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::kv::RequestTable;

ClusterConfig inline_config() {
  ClusterConfig cfg;
  cfg.servers = 5;
  cfg.replication = 3;
  cfg.vnodes = 32;
  cfg.transport.kind = dvv::net::TransportKind::kInline;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  return cfg;
}

ClusterConfig sim_config(double drop = 0.0, double dup = 0.0,
                         std::size_t reorder = 0) {
  ClusterConfig cfg = inline_config();
  cfg.transport.kind = dvv::net::TransportKind::kSim;
  cfg.transport.sim.seed = 42;
  cfg.transport.sim.drop_probability = drop;
  cfg.transport.sim.duplicate_probability = dup;
  cfg.transport.sim.reorder_window = reorder;
  cfg.transport.sim.auto_settle = false;  // real in-flight windows
  return cfg;
}

// ---- RequestTable: slot + generation recycling ------------------------------

TEST(RequestTable, SlotsRecycleUnderFreshGenerations) {
  RequestTable table;
  const std::uint64_t a = table.acquire();
  EXPECT_TRUE(table.is_current(a));
  EXPECT_FALSE(table.is_stale(a));
  EXPECT_EQ(table.open_count(), 1u);

  table.retire(a);
  EXPECT_FALSE(table.is_current(a));
  EXPECT_TRUE(table.is_stale(a)) << "a retired id is dead forever";
  EXPECT_EQ(table.open_count(), 0u);

  const std::uint64_t b = table.acquire();
  EXPECT_EQ(RequestTable::slot_of(a), RequestTable::slot_of(b))
      << "the slot recycles";
  EXPECT_NE(a, b) << "the id never does";
  EXPECT_GT(RequestTable::generation_of(b), RequestTable::generation_of(a));
  EXPECT_TRUE(table.is_current(b));
  EXPECT_FALSE(table.is_current(a)) << "the old tenant cannot resolve";
}

TEST(RequestTable, ManyConcurrentRequestsGetDistinctSlots) {
  RequestTable table;
  std::set<std::size_t> slots;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(table.acquire());
  for (const std::uint64_t id : ids) slots.insert(RequestTable::slot_of(id));
  EXPECT_EQ(slots.size(), 100u);
  for (const std::uint64_t id : ids) table.retire(id);
  EXPECT_EQ(table.open_count(), 0u);
}

// ---- quorum completion ------------------------------------------------------

TEST(Coordinator, QuorumReadCompletesWithExactResponderSet) {
  Cluster<DvvMechanism> cluster(inline_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("k", "v");
  const auto pref = cluster.preference_list("k");

  const std::uint64_t id = cluster.begin_read_at("k", pref[0], 2);
  ASSERT_TRUE(cluster.request_terminal(id)) << "inline replies are immediate";
  const auto harvest = cluster.take_read_result(id);
  EXPECT_EQ(harvest.outcome, CoordOutcome::kQuorum);
  EXPECT_EQ(harvest.responders, (std::vector<ReplicaId>{pref[0], pref[1]}))
      << "the receipt reports exactly which replicas answered, in order";
  EXPECT_EQ(harvest.asked, 2u);
  EXPECT_TRUE(harvest.result.found);
  EXPECT_FALSE(harvest.result.degraded);
}

TEST(Coordinator, WriteQuorumCountsDistinctAcks) {
  Cluster<DvvMechanism> cluster(sim_config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  dvv::kv::WriteOptions opts;
  opts.write_quorum = 2;
  const std::uint64_t id =
      cluster.begin_write(key, pref[0], dvv::kv::client_actor(0), {}, "v",
                          pref, opts);
  EXPECT_FALSE(cluster.request_terminal(id))
      << "W=2 needs one remote ack; everything is still queued";
  cluster.pump_all();  // fan-out lands, acks ride back
  ASSERT_TRUE(cluster.request_terminal(id));
  const auto receipt = cluster.take_write_receipt(id);
  EXPECT_EQ(receipt.outcome, CoordOutcome::kQuorum);
  EXPECT_GE(receipt.acks(), 2u);
  EXPECT_EQ(receipt.acked_by.front(), pref[0])
      << "the coordinator's local apply is always the first ack";
  EXPECT_EQ(receipt.replicated_to, 2u);
  EXPECT_FALSE(receipt.degraded);
}

// Satellite regression: duplicate replies — the transport's dup fault
// redelivers scatter messages AND replies — must count ONCE toward the
// quorum, and the engine must report the drops.
TEST(Coordinator, CoordDupReplyCountsOnce) {
  Cluster<DvvMechanism> cluster(sim_config(0.0, 1.0, 0), {});  // dup everything
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("k", "v");
  cluster.pump_all();

  const auto pref = cluster.preference_list("k");
  const std::uint64_t id = cluster.begin_read_at("k", pref[0], 3);
  cluster.pump_all();
  ASSERT_TRUE(cluster.request_terminal(id));
  const auto harvest = cluster.take_read_result(id);
  EXPECT_EQ(harvest.outcome, CoordOutcome::kQuorum);
  EXPECT_EQ(harvest.result.replies, 3u) << "three distinct responders, not six";
  const std::set<ReplicaId> distinct(harvest.responders.begin(),
                                     harvest.responders.end());
  EXPECT_EQ(distinct.size(), harvest.responders.size())
      << "no responder may be counted twice";
  EXPECT_GT(cluster.coord_stats().duplicate_replies_dropped, 0u)
      << "the duplicated deliveries must have reached the engine and died";

  // Writes: every CoordWriteReq is duplicated, so every target merges
  // twice and acks twice — the quorum still counts each replica once.
  dvv::kv::WriteOptions opts;
  opts.write_quorum = 3;
  const std::uint64_t wid =
      cluster.begin_write("k", pref[0], dvv::kv::client_actor(0), {}, "w",
                          pref, opts);
  cluster.pump_all();
  ASSERT_TRUE(cluster.request_terminal(wid));
  const auto receipt = cluster.take_write_receipt(wid);
  EXPECT_EQ(receipt.outcome, CoordOutcome::kQuorum);
  const std::set<ReplicaId> acked(receipt.acked_by.begin(),
                                  receipt.acked_by.end());
  EXPECT_EQ(acked.size(), receipt.acked_by.size());
  EXPECT_EQ(receipt.acks(), 3u);
}

// ---- deadlines and late replies --------------------------------------------

TEST(Coordinator, DeadlineExpiresPendingRequestAsDegradedTimeout) {
  Cluster<DvvMechanism> cluster(sim_config(1.0, 0.0, 0), {});  // drop everything
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("k", "v");  // coordinator holds it; fan-out drops are fine
  const auto pref = cluster.preference_list("k");

  // (The put above already timed out once: its fan-out acks all
  // dropped, so the synchronous shim finalized it at return.)
  const std::size_t timeouts_before = cluster.coord_stats().timeouts;
  dvv::kv::ReadOptions opts;
  opts.deadline_ticks = 2;
  const std::uint64_t id = cluster.begin_read_at("k", pref[0], 3, opts);
  EXPECT_FALSE(cluster.request_terminal(id));
  cluster.pump();  // tick 1
  EXPECT_FALSE(cluster.request_terminal(id));
  cluster.pump();  // tick 2: deadline
  ASSERT_TRUE(cluster.request_terminal(id));
  const auto harvest = cluster.take_read_result(id);
  EXPECT_EQ(harvest.outcome, CoordOutcome::kTimeout);
  EXPECT_EQ(harvest.result.replies, 1u) << "only the local read answered";
  EXPECT_TRUE(harvest.result.degraded);
  EXPECT_TRUE(harvest.result.found) << "partial data still comes back";
  EXPECT_EQ(cluster.coord_stats().timeouts, timeouts_before + 1);
}

// Satellite regression: a reply arriving AFTER its request completed
// (or timed out) is dropped without touching the finished state, and a
// reply aimed at a harvested-and-REUSED request slot is recognized by
// generation and cannot corrupt the slot's new tenant.
TEST(Coordinator, LateReplyCannotCorruptFinishedOrReusedSlot) {
  // Huge reorder window: scatter replies crawl while deadlines fire.
  Cluster<DvvMechanism> cluster(sim_config(0.0, 0.0, 12), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("a", "va");
  alice.put("b", "vb");
  cluster.pump_all();

  const auto pref_a = cluster.preference_list("a");
  dvv::kv::ReadOptions fast;
  fast.deadline_ticks = 1;
  const std::uint64_t first = cluster.begin_read_at("a", pref_a[0], 3, fast);
  cluster.pump();  // deadline: completes as timeout, replies still in flight
  ASSERT_TRUE(cluster.request_terminal(first));
  const auto timed_out = cluster.take_read_result(first);
  EXPECT_EQ(timed_out.outcome, CoordOutcome::kTimeout);

  // The slot recycles to a new request for a DIFFERENT key.
  const auto pref_b = cluster.preference_list("b");
  dvv::kv::ReadOptions patient;
  patient.deadline_ticks = 64;
  const std::uint64_t second = cluster.begin_read_at("b", pref_b[0], 3, patient);
  EXPECT_EQ(RequestTable::slot_of(first), RequestTable::slot_of(second))
      << "the test must actually exercise slot reuse";
  ASSERT_NE(first, second);

  // Drain: the FIRST request's crawling replies now land on a retired
  // id whose slot belongs to `second` — generation hygiene drops them.
  cluster.pump_all();
  EXPECT_GT(cluster.coord_stats().stale_replies_dropped, 0u)
      << "the old request's stragglers must be recognized as stale";
  ASSERT_TRUE(cluster.request_terminal(second));
  const auto harvest = cluster.take_read_result(second);
  EXPECT_EQ(harvest.outcome, CoordOutcome::kQuorum);
  EXPECT_EQ(harvest.result.replies, 3u);
  ASSERT_TRUE(harvest.result.found);
  ASSERT_EQ(harvest.result.values.size(), 1u);
  EXPECT_EQ(harvest.result.values[0], "vb")
      << "a stale reply for key `a` must never leak into key `b`'s read";
  for (const ReplicaId r : harvest.responders) {
    EXPECT_TRUE(std::find(pref_b.begin(), pref_b.end(), r) != pref_b.end());
  }
}

// ---- unavailable and read repair -------------------------------------------

TEST(Coordinator, WholePreferenceListDownCompletesUnavailable) {
  Cluster<DvvMechanism> cluster(inline_config(), {});
  const auto pref = cluster.preference_list("k");
  for (const ReplicaId r : pref) cluster.replica(r).set_alive(false);
  const std::uint64_t id = cluster.begin_read("k", 2);
  ASSERT_TRUE(cluster.request_terminal(id));
  const auto harvest = cluster.take_read_result(id);
  EXPECT_EQ(harvest.outcome, CoordOutcome::kUnavailable);
  EXPECT_TRUE(harvest.result.unavailable);
  EXPECT_EQ(harvest.result.replies, 0u);
}

TEST(Coordinator, ReadRepairScattersMergedStateToDivergentResponders) {
  Cluster<DvvMechanism> cluster(inline_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  // Divergence: two sibling writes on two different replicas only.
  alice.put_via(key, pref[0], "at-0", {});
  bob.put_via(key, pref[1], "at-1", {});

  dvv::kv::ReadOptions opts;
  opts.read_repair = true;
  const std::uint64_t id = cluster.begin_read_at(key, pref[0], 3, opts);
  ASSERT_TRUE(cluster.request_terminal(id));
  const auto harvest = cluster.take_read_result(id);
  EXPECT_EQ(harvest.result.values.size(), 2u) << "the merge sees both siblings";

  // Every responder now holds the merged two-sibling state.
  for (const ReplicaId r : harvest.responders) {
    EXPECT_EQ(cluster.get(key, r).values.size(), 2u) << "replica " << r;
  }
}

TEST(Coordinator, PlainGetQuorumDoesNotWriteBack) {
  Cluster<DvvMechanism> cluster(inline_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  alice.put_via(key, pref[0], "at-0", {});
  bob.put_via(key, pref[1], "at-1", {});

  const auto merged = cluster.get_quorum(key, 3);
  EXPECT_EQ(merged.values.size(), 2u);
  EXPECT_EQ(cluster.get(key, pref[0]).values.size(), 1u)
      << "no write-back without read_repair";
  EXPECT_EQ(cluster.get(key, pref[1]).values.size(), 1u);
}

}  // namespace
