// Direct unit tests for Replica<M> (the cluster tests exercise it only
// through routing): local get/put, merge_key, key enumeration,
// footprint accounting, liveness, and hint bookkeeping.
#include "kv/replica.hpp"

#include <gtest/gtest.h>

#include <string>

#include "kv/mechanism.hpp"

namespace {

using dvv::kv::DvvMechanism;
using dvv::kv::Replica;

const DvvMechanism kMech{};
const auto kClient = dvv::kv::client_actor(0);

TEST(Replica, StartsEmptyAndAlive) {
  Replica<DvvMechanism> rep(3);
  EXPECT_EQ(rep.id(), 3u);
  EXPECT_TRUE(rep.alive());
  EXPECT_EQ(rep.key_count(), 0u);
  EXPECT_TRUE(rep.keys().empty());
  EXPECT_EQ(rep.find("k"), nullptr);
  EXPECT_FALSE(rep.get(kMech, "k").found);
}

TEST(Replica, PutThenGetLocally) {
  Replica<DvvMechanism> rep(0);
  rep.put(kMech, "k", /*coordinator=*/0, kClient, {}, "v");
  const auto got = rep.get(kMech, "k");
  ASSERT_TRUE(got.found);
  ASSERT_EQ(got.values.size(), 1u);
  EXPECT_EQ(got.values[0], "v");
  EXPECT_FALSE(got.context.empty());
  EXPECT_EQ(rep.key_count(), 1u);
}

TEST(Replica, KeysAreSortedAndComplete) {
  Replica<DvvMechanism> rep(0);
  for (const char* k : {"zebra", "apple", "mango"}) {
    rep.put(kMech, k, 0, kClient, {}, "v");
  }
  const auto keys = rep.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "apple");
  EXPECT_EQ(keys[1], "mango");
  EXPECT_EQ(keys[2], "zebra");
}

TEST(Replica, MergeKeyAdoptsRemoteState) {
  Replica<DvvMechanism> a(0), b(1);
  a.put(kMech, "k", 0, kClient, {}, "v");
  b.merge_key(kMech, "k", *a.find("k"));
  const auto got = b.get(kMech, "k");
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.values[0], "v");
}

TEST(Replica, SyncWithIsBidirectional) {
  Replica<DvvMechanism> a(0), b(1);
  a.put(kMech, "only-a", 0, kClient, {}, "va");
  b.put(kMech, "only-b", 1, kClient, {}, "vb");
  a.sync_with(kMech, b);
  EXPECT_TRUE(a.get(kMech, "only-b").found);
  EXPECT_TRUE(b.get(kMech, "only-a").found);
  EXPECT_EQ(a.key_count(), 2u);
  EXPECT_EQ(b.key_count(), 2u);
}

TEST(Replica, FootprintCountsEverything) {
  Replica<DvvMechanism> rep(0);
  rep.put(kMech, "k1", 0, kClient, {}, "v1");
  rep.put(kMech, "k2", 0, kClient, {}, "v2");
  rep.put(kMech, "k2", 0, kClient, {}, "sibling");  // blind: second sibling
  const auto fp = rep.footprint(kMech);
  EXPECT_EQ(fp.keys, 2u);
  EXPECT_EQ(fp.siblings, 3u);
  EXPECT_GT(fp.clock_entries, 0u);
  EXPECT_GT(fp.total_bytes, fp.metadata_bytes);
}

TEST(Replica, FootprintMergeAggregates) {
  Replica<DvvMechanism> a(0), b(1);
  a.put(kMech, "x", 0, kClient, {}, "v");
  b.put(kMech, "y", 1, kClient, {}, "v");
  auto fa = a.footprint(kMech);
  const auto fb = b.footprint(kMech);
  fa.merge(fb);
  EXPECT_EQ(fa.keys, 2u);
  EXPECT_EQ(fa.siblings, 2u);
}

TEST(Replica, HintStashAndDeliver) {
  Replica<DvvMechanism> fallback(4), owner(1);
  Replica<DvvMechanism> source(0);
  source.put(kMech, "k", 0, kClient, {}, "parked");

  owner.set_alive(false);
  fallback.stash_hint(kMech, owner.id(), "k", *source.find("k"));
  EXPECT_EQ(fallback.hinted_count(), 1u);
  EXPECT_EQ(fallback.find("k"), nullptr) << "hints never serve reads";

  auto lookup = [&](dvv::kv::ReplicaId) -> Replica<DvvMechanism>& { return owner; };
  EXPECT_EQ(fallback.deliver_hints(kMech, lookup), 0u) << "owner still down";
  owner.set_alive(true);
  EXPECT_EQ(fallback.deliver_hints(kMech, lookup), 1u);
  EXPECT_EQ(fallback.hinted_count(), 0u);
  EXPECT_TRUE(owner.get(kMech, "k").found);
}

TEST(Replica, StashedHintsMerge) {
  Replica<DvvMechanism> fallback(4), owner(1), s0(0), s2(2);
  s0.put(kMech, "k", 0, kClient, {}, "x");
  s2.put(kMech, "k", 2, kClient, {}, "y");
  fallback.stash_hint(kMech, 1, "k", *s0.find("k"));
  fallback.stash_hint(kMech, 1, "k", *s2.find("k"));
  EXPECT_EQ(fallback.hinted_count(), 1u) << "same (owner,key): merged hint";

  auto lookup = [&](dvv::kv::ReplicaId) -> Replica<DvvMechanism>& { return owner; };
  fallback.deliver_hints(kMech, lookup);
  const auto got = owner.get(kMech, "k");
  EXPECT_EQ(got.values.size(), 2u) << "both concurrent parked writes arrive";
}

}  // namespace
