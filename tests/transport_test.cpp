// Unit tests for the message-passing layer (src/net): typed message
// codec roundtrips, InlineTransport's synchronous-in-order contract,
// SimTransport's seeded fault injection (drop / duplicate / reorder /
// partition), and the cluster-level flows that ride on it — queued
// replication windows, ack-guarded hint delivery, partitioned sync
// sessions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "net/message.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::net::Envelope;
using dvv::net::InlineTransport;
using dvv::net::Message;
using dvv::net::SimTransport;
using dvv::net::SimTransportConfig;

// ---- message codec ---------------------------------------------------------

TEST(NetMessage, EveryTypeRoundTrips) {
  const std::vector<Message> messages = {
      dvv::net::ReplicateMsg{"key-1", std::string("\x01\x02\x00stateful", 11)},
      dvv::net::HintMsg{7, "key-2", "parked"},
      dvv::net::HintDeliverMsg{3, "key-3", "homeward"},
      dvv::net::HintAckMsg{3, "key-3", 0xdeadbeefULL},
      dvv::net::SyncReqMsg{42},
      dvv::net::SyncRespMsg{42, 3, 14, 9, 2, 1234},
  };
  for (const Message& msg : messages) {
    const std::string bytes = dvv::net::encode_to_bytes(msg);
    const Message back = dvv::net::decode_from_bytes(bytes);
    ASSERT_EQ(back.index(), msg.index());
    const std::string again = dvv::net::encode_to_bytes(back);
    EXPECT_EQ(again, bytes) << "decode/encode must be the identity";
  }
}

TEST(NetMessage, EncodingIsMetered) {
  // The wire size is the codec framing, not sizeof: a bigger payload
  // means proportionally more bytes.
  const auto small = dvv::net::encode_to_bytes(dvv::net::ReplicateMsg{"k", "v"});
  const auto large = dvv::net::encode_to_bytes(
      dvv::net::ReplicateMsg{"k", std::string(1000, 'v')});
  EXPECT_EQ(large.size(), small.size() + 999 + 1);  // +1: longer length varint
}

// ---- InlineTransport -------------------------------------------------------

Message probe(const std::string& tag) {
  return dvv::net::SyncReqMsg{std::hash<std::string>{}(tag)};
}

std::uint64_t nonce_of(const Envelope& e) {
  return std::get<dvv::net::SyncReqMsg>(*e.msg).nonce;
}

TEST(InlineTransport, DeliversSynchronouslyInSendOrder) {
  InlineTransport transport;
  std::vector<std::uint64_t> seen;
  transport.set_sink([&](const Envelope& e) { seen.push_back(nonce_of(e)); });
  transport.send(0, 1, dvv::net::SyncReqMsg{1});
  EXPECT_EQ(seen.size(), 1u) << "delivery happens inside send()";
  transport.send(1, 2, dvv::net::SyncReqMsg{2});
  transport.send(0, 2, dvv::net::SyncReqMsg{3});
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(transport.idle());
  EXPECT_EQ(transport.pump(), 0u);
  EXPECT_EQ(transport.stats().sent, 3u);
  EXPECT_EQ(transport.stats().delivered, 3u);
  // Metered wire bytes = the exact codec encoding (tag + nonce varint).
  EXPECT_EQ(transport.stats().wire_bytes,
            3 * dvv::net::encode_to_bytes(dvv::net::SyncReqMsg{1}).size());
}

TEST(InlineTransport, PartitionRefusesCrossGroupSends) {
  InlineTransport transport;
  std::size_t delivered = 0;
  transport.set_sink([&](const Envelope&) { ++delivered; });
  transport.partition({{0, 1}, {2, 3}}, "split");
  EXPECT_TRUE(transport.partitioned());
  EXPECT_EQ(transport.partition_label(), "split");

  transport.send(0, 1, probe("same side"));
  EXPECT_EQ(delivered, 1u);
  transport.send(0, 2, probe("cross"));
  EXPECT_EQ(delivered, 1u) << "cross-partition send is refused";
  EXPECT_EQ(transport.stats().partition_dropped, 1u);

  transport.heal();
  transport.send(0, 2, probe("after heal"));
  EXPECT_EQ(delivered, 2u);
}

TEST(InlineTransport, UnnamedNodesFormTheRemainderGroup) {
  InlineTransport transport;
  std::size_t delivered = 0;
  transport.set_sink([&](const Envelope&) { ++delivered; });
  transport.partition({{0}});  // isolate node 0 from everyone else
  transport.send(1, 2, probe("both in the remainder"));
  EXPECT_EQ(delivered, 1u);
  transport.send(0, 1, probe("isolated"));
  EXPECT_EQ(delivered, 1u);
}

// ---- SimTransport ----------------------------------------------------------

TEST(SimTransport, NothingDeliversBeforePump) {
  SimTransportConfig config;
  config.auto_settle = false;
  SimTransport transport(config);
  std::vector<std::uint64_t> seen;
  transport.set_sink([&](const Envelope& e) { seen.push_back(e.seq); });
  transport.send(0, 1, probe("x"));
  transport.send(0, 2, probe("y"));
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(transport.in_flight(), 2u);
  EXPECT_EQ(transport.pump(), 2u);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1})) << "FIFO without faults";
  EXPECT_TRUE(transport.idle());
}

TEST(SimTransport, AutoSettleDrainsOnSettle) {
  SimTransportConfig config;  // auto_settle defaults on
  SimTransport transport(config);
  std::size_t delivered = 0;
  transport.set_sink([&](const Envelope&) { ++delivered; });
  transport.send(0, 1, probe("x"));
  EXPECT_EQ(delivered, 0u);
  transport.settle();
  EXPECT_EQ(delivered, 1u);
  EXPECT_TRUE(transport.idle());
}

TEST(SimTransport, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    SimTransportConfig config;
    config.seed = seed;
    config.drop_probability = 0.2;
    config.duplicate_probability = 0.2;
    config.reorder_window = 4;
    config.auto_settle = false;
    // This test records one seq per sink call: keep per-envelope
    // delivery (batching coalesces same-link runs into one envelope).
    config.batch_delivery = false;
    SimTransport transport(config);
    std::vector<std::uint64_t> order;
    transport.set_sink([&](const Envelope& e) { order.push_back(e.seq); });
    for (int i = 0; i < 100; ++i) transport.send(0, 1, probe("m" + std::to_string(i)));
    transport.drain();
    return order;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(SimTransport, DropsAndDuplicatesAreCountedAndBounded) {
  SimTransportConfig config;
  config.seed = 3;
  config.drop_probability = 0.3;
  config.duplicate_probability = 0.3;
  config.auto_settle = false;
  // The sink-call count is compared against stats().delivered below,
  // which meters per message: keep per-envelope delivery.
  config.batch_delivery = false;
  SimTransport transport(config);
  std::size_t delivered = 0;
  transport.set_sink([&](const Envelope&) { ++delivered; });
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) transport.send(0, 1, probe("m"));
  transport.drain();
  const auto& stats = transport.stats();
  EXPECT_EQ(stats.sent, n);
  EXPECT_GT(stats.dropped, n / 5);
  EXPECT_LT(stats.dropped, n / 2);
  // Only a surviving (non-dropped) send can leave a duplicate behind:
  // expect about 0.7 * 0.3 * n of them.
  EXPECT_GT(stats.duplicated, n / 10);
  EXPECT_EQ(delivered, stats.delivered);
  // Every surviving copy (original or duplicate of a non-dropped send)
  // is delivered exactly once.
  EXPECT_GE(delivered, n - stats.dropped);
  EXPECT_LE(delivered, n - stats.dropped + stats.duplicated);
}

TEST(SimTransport, ReorderWindowReordersDeliveries) {
  SimTransportConfig config;
  config.seed = 5;
  config.reorder_window = 5;
  config.auto_settle = false;
  // One recorded seq per delivered message, so per-envelope delivery.
  config.batch_delivery = false;
  SimTransport transport(config);
  std::vector<std::uint64_t> order;
  transport.set_sink([&](const Envelope& e) { order.push_back(e.seq); });
  for (int i = 0; i < 50; ++i) transport.send(0, 1, probe("m"));
  transport.drain();
  ASSERT_EQ(order.size(), 50u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order) << "a 5-tick window must actually reorder";
}

TEST(SimTransport, PartitionKillsInFlightMessages) {
  SimTransportConfig config;
  config.auto_settle = false;
  SimTransport transport(config);
  std::size_t delivered = 0;
  transport.set_sink([&](const Envelope&) { ++delivered; });

  transport.send(0, 1, probe("in flight across the cut"));
  transport.partition({{0}, {1}});
  transport.drain();
  EXPECT_EQ(delivered, 0u) << "the cut forms while the message flies";
  EXPECT_EQ(transport.stats().partition_dropped, 1u);

  // Healing is not retroactive: the lost message stays lost.
  transport.heal();
  transport.drain();
  EXPECT_EQ(delivered, 0u);

  transport.send(0, 1, probe("after heal"));
  transport.drain();
  EXPECT_EQ(delivered, 1u);
}

// ---- cluster flows over the transport --------------------------------------

ClusterConfig sim_cluster_config(std::uint64_t seed = 11,
                                 bool auto_settle = false) {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 32;
  cfg.transport.kind = dvv::net::TransportKind::kSim;
  cfg.transport.sim = SimTransportConfig{};
  cfg.transport.sim.seed = seed;
  cfg.transport.sim.auto_settle = auto_settle;
  return cfg;
}

TEST(ClusterTransport, ReplicationWindowIsRealQueuedState) {
  Cluster<DvvMechanism> cluster(sim_cluster_config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.put(key, pref[0], dvv::kv::client_actor(0), {}, "v",
              cluster.preference_list(key));

  EXPECT_TRUE(cluster.get(key, pref[0]).found) << "coordinator applied locally";
  EXPECT_FALSE(cluster.get(key, pref[1]).found) << "fan-out still in flight";
  EXPECT_EQ(cluster.transport().in_flight(), 2u);

  cluster.pump_all();
  EXPECT_TRUE(cluster.get(key, pref[1]).found);
  EXPECT_TRUE(cluster.get(key, pref[2]).found);
}

TEST(ClusterTransport, InFlightCopyDiesWithItsTarget) {
  Cluster<DvvMechanism> cluster(sim_cluster_config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.put(key, pref[0], dvv::kv::client_actor(0), {}, "v",
              cluster.preference_list(key));
  // The target pauses while the message is in flight: a dead process
  // receives nothing.
  cluster.replica(pref[1]).set_alive(false);
  cluster.pump_all();
  EXPECT_EQ(cluster.delivery_drops().replicate, 1u);
  cluster.replica(pref[1]).set_alive(true);
  EXPECT_FALSE(cluster.get(key, pref[1]).found)
      << "the copy must not teleport into a dead replica";
}

TEST(ClusterTransport, HintStaysParkedUntilDeliveryIsAcked) {
  Cluster<DvvMechanism> cluster(sim_cluster_config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  const auto order = cluster.ring().ring_order(key);
  cluster.replica(pref[2]).set_alive(false);
  cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "v");
  cluster.pump_all();  // the HintMsg reaches the fallback
  ASSERT_EQ(cluster.hinted_count(), 1u);

  cluster.replica(pref[2]).set_alive(true);
  // The partition cuts holder from owner: the HintDeliverMsg is lost in
  // flight, so the hint must stay parked (no ack, no drop).
  EXPECT_EQ(cluster.deliver_hints(), 0u);
  cluster.partition({{order[3]}}, "holder isolated");
  cluster.pump_all();
  EXPECT_EQ(cluster.hinted_count(), 1u) << "unacked delivery keeps the hint";
  EXPECT_FALSE(cluster.get(key, pref[2]).found);

  // Heal and retry: delivery completes, the ack retires the hint.
  cluster.heal();
  (void)cluster.deliver_hints();
  cluster.pump_all();
  EXPECT_EQ(cluster.hinted_count(), 0u);
  EXPECT_TRUE(cluster.get(key, pref[2]).found);
}

TEST(ClusterTransport, PartitionedSyncRequestMeansNoSession) {
  Cluster<DvvMechanism> cluster(sim_cluster_config(11, true), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  // Divergence: the write lands on the coordinator only.
  cluster.put(key, pref[0], dvv::kv::client_actor(0), {}, "v", {});
  ASSERT_FALSE(cluster.get(key, pref[1]).found);

  cluster.partition({{pref[0]}, {pref[1]}});
  const auto cut = cluster.anti_entropy_digest_pair(pref[0], pref[1]);
  EXPECT_EQ(cut.keys_shipped, 0u) << "the request died on the cut link";
  EXPECT_FALSE(cluster.get(key, pref[1]).found);

  cluster.heal();
  const auto healed = cluster.anti_entropy_digest_pair(pref[0], pref[1]);
  EXPECT_GT(healed.keys_shipped, 0u);
  EXPECT_TRUE(cluster.get(key, pref[1]).found);
}

// Regression: the read-repair fold used to gather from and scatter to
// every alive preference owner in shared memory, leaking state across
// an active partition the transport was dutifully enforcing for the
// messages.  A repair initiated on one side must be blind to the other.
TEST(ClusterTransport, RepairCannotCrossAnActivePartition) {
  Cluster<DvvMechanism> cluster(sim_cluster_config(23, true), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  // Divergence on pref[2] only: it alone holds the write.
  cluster.put(key, pref[2], dvv::kv::client_actor(0), {}, "island", {});
  ASSERT_TRUE(cluster.get(key, pref[2]).found);
  ASSERT_FALSE(cluster.get(key, pref[0]).found);

  // Cut pref[2] off, then sync the two same-side owners: the repair
  // must not read the islanded replica's state (nothing to ship — both
  // reachable owners agree the key is missing) nor write to it.
  cluster.partition({{pref[2]}}, "island");
  const auto stats = cluster.anti_entropy_digest_pair(pref[0], pref[1]);
  EXPECT_EQ(stats.keys_shipped, 0u)
      << "the islanded write must be invisible to the same-side pair";
  EXPECT_FALSE(cluster.get(key, pref[0]).found)
      << "repair must not smuggle state across the cut";
  EXPECT_FALSE(cluster.get(key, pref[1]).found);

  // The full digest pass under the cut repairs only within sides...
  cluster.anti_entropy_digest();
  EXPECT_FALSE(cluster.get(key, pref[0]).found);
  EXPECT_TRUE(cluster.get(key, pref[2]).found) << "the island keeps its write";

  // ...and heal() lets the next pass reconcile everyone.
  cluster.heal();
  cluster.anti_entropy_digest();
  for (const ReplicaId r : pref) {
    EXPECT_TRUE(cluster.get(key, r).found) << "replica " << r;
  }
}

// Regression: receipts must not count targets the coordinator cannot
// reach — a cross-partition fan-out or hint park is refused at send,
// and the receipt has to say so instead of reporting phantom copies.
TEST(ClusterTransport, ReceiptsDoNotCountUnreachableTargets) {
  Cluster<DvvMechanism> cluster(sim_cluster_config(29, true), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  const auto order = cluster.ring().ring_order(key);

  // Fan-out: one preference member across the cut.
  cluster.partition({{pref[1]}}, "cut replica");
  const auto put_receipt =
      cluster.put(key, pref[0], dvv::kv::client_actor(0), {}, "v", pref);
  EXPECT_EQ(put_receipt.replicated_to, 1u)
      << "only the reachable member counts";

  // Handoff: the owner is dead and every fallback is unreachable.
  cluster.heal();
  cluster.replica(pref[2]).set_alive(false);
  std::vector<dvv::net::NodeId> fallbacks(order.begin() + 3, order.end());
  cluster.partition({{pref[0], pref[1], pref[2]}}, "fallbacks cut off");
  const auto handoff_receipt =
      cluster.put_with_handoff(key, pref[0], dvv::kv::client_actor(0), {}, "w");
  EXPECT_EQ(handoff_receipt.hinted, 0u) << "no reachable fallback to park on";
  EXPECT_EQ(handoff_receipt.unparked, 1u) << "the uncovered owner is reported";
  EXPECT_EQ(cluster.hinted_count(), 0u);
}

TEST(ClusterTransport, DuplicatedDeliveriesAreIdempotent) {
  auto cfg = sim_cluster_config(17, true);
  cfg.transport.sim.duplicate_probability = 1.0;  // every message twice
  Cluster<DvvMechanism> cluster(cfg, {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const Key key = "k";
  alice.put(key, "v1");
  alice.rmw(key, [](const auto&) { return std::string("v2"); });
  EXPECT_GT(cluster.transport().stats().duplicated, 0u);
  for (const ReplicaId r : cluster.preference_list(key)) {
    const auto got = cluster.get(key, r);
    ASSERT_TRUE(got.found);
    EXPECT_EQ(got.values, std::vector<std::string>{"v2"}) << "replica " << r;
  }
  // Nothing left to repair: duplicate deliveries did not fork state.
  EXPECT_EQ(cluster.anti_entropy(), 0u);
}

}  // namespace
