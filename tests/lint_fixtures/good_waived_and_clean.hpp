// dvv_lint self-test fixture.  NOT part of the build.  No expect-lint
// markers: everything here must come back CLEAN — it exercises the
// waiver syntax, the [[nodiscard]] acceptance path, and constructs that
// look near-miss (comments and strings mentioning banned names).
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <string_view>

namespace dvv::lint_fixture {

// Mentioning std::unordered_map in a comment must not fire; nor must
// the string literal below.
inline const char* kDoc = "never use unordered_map in replica state";

// Metrics-only host timing, documented at the site:
inline long metrics_now_us() {
  // dvv-lint: allow(wall-clock) — metrics-only timing, never sim-visible
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Properly annotated fallible decode: rule must accept.
[[nodiscard]] bool try_decode_ok(std::string_view bytes, int& out);

// Value-keyed ordered map: fine.
struct Clean {
  std::map<std::string, int> data;
};

}  // namespace dvv::lint_fixture
