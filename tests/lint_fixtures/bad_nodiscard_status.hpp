// dvv_lint self-test fixture.  NOT part of the build.  Proves the
// nodiscard-status rule still fires (expect-lint: nodiscard-status).
#pragma once

#include <string_view>

namespace dvv::lint_fixture {

// A fallible decode whose status can be silently dropped at every call
// site — the exact bug class the hardened decode boundary exists to
// prevent.  Must be [[nodiscard]].
bool try_decode_thing(std::string_view bytes, int& out);

}  // namespace dvv::lint_fixture
