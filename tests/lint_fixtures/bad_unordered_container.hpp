// dvv_lint self-test fixture.  NOT part of the build — compiled by no
// target; it exists so dvv_lint --self-test proves the
// unordered-container rule still fires (expect-lint: unordered-container).
#pragma once

#include <string>
#include <unordered_map>

namespace dvv::lint_fixture {

struct ReplicaStateLike {
  // Iterating this to encode / sync / hash would give twin A and twin B
  // different byte streams.  The rule must catch the declaration:
  std::unordered_map<std::string, int> data;
};

}  // namespace dvv::lint_fixture
