// dvv_lint self-test fixture.  NOT part of the build.  Proves the
// raw-rand rule still fires (expect-lint: raw-rand).
#pragma once

#include <cstdlib>

namespace dvv::lint_fixture {

inline int pick_replica_wrong(int n) {
  // Unseeded host randomness instead of the sim Rng stream.
  return rand() % n;
}

}  // namespace dvv::lint_fixture
