// dvv_lint self-test fixture.  NOT part of the build.  Proves the
// opt-in no-alloc-in-hot-path rule fires in marker-tagged files
// (expect-lint: no-alloc-in-hot-path) and that a site-local waiver
// still silences the counted-miss idiom.
//
// dvv-hot-path: this fixture opts in to the allocation audit.
#pragma once

#include <memory>
#include <vector>

namespace dvv::lint_fixture {

struct Envelope {
  int seq = 0;
};

inline std::shared_ptr<Envelope> send_wrong() {
  // Heap traffic per message: exactly what the pools exist to remove.
  return std::make_shared<Envelope>();
}

inline Envelope* acquire_ok() {
  // The counted miss.  dvv-lint: allow(no-alloc-in-hot-path)
  return new Envelope();
}

inline std::vector<int> burst_wrong() {
  return std::vector<int>(16, 0);
}

}  // namespace dvv::lint_fixture
