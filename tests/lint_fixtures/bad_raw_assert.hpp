// dvv_lint self-test fixture.  NOT part of the build.  Proves the
// raw-assert rule still fires (expect-lint: raw-assert).
#pragma once

#include <cassert>

namespace dvv::lint_fixture {

inline void check_invariant_wrong(bool ok) {
  // Vanishes under NDEBUG; release builds sail past the violation.
  assert(ok);
}

}  // namespace dvv::lint_fixture
