// dvv_lint self-test fixture.  NOT part of the build.  Proves the
// wall-clock rule still fires (expect-lint: wall-clock).
#pragma once

#include <chrono>

namespace dvv::lint_fixture {

inline long now_us_wrong() {
  // Sim-reachable code reading host time: two runs, two answers.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace dvv::lint_fixture
