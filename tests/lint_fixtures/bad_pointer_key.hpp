// dvv_lint self-test fixture.  NOT part of the build.  Proves the
// pointer-key rule still fires (expect-lint: pointer-key).
#pragma once

#include <map>
#include <string>

namespace dvv::lint_fixture {

struct Peer {};

struct RoutingTableLike {
  // Ordered by address = ordered by allocator mood.  Iteration order
  // changes run to run even though the container is "ordered".
  std::map<Peer*, std::string> routes;
};

}  // namespace dvv::lint_fixture
