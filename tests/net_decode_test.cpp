// The hardened wire-decode boundary (net/message.hpp).
//
// PR 7 moved peer-frame decoding from the asserting codec::Reader to
// codec::StrictReader: malformed bytes come back std::nullopt, never an
// abort — these are the first bytes a hostile peer will control once a
// socket fronts the transport.  This suite pins the contract the fuzz
// harnesses (tests/fuzz/) explore probabilistically:
//
//   * every message type round-trips through the strict decode, and the
//     accepted form is canonical (re-encode == input, wire_size == len);
//   * every strict prefix of a valid frame is rejected, as are trailing
//     garbage, unknown tags, non-canonical varints and non-{0,1} bools;
//   * decode_or_reject's rejection taxonomy: net.decode_reject plus the
//     per-type counter when the tag was readable, .unknown otherwise;
//   * SimTransport drops injected garbage at delivery (decode_rejected)
//     without aborting, and still delivers well-formed injected frames.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "net/sim_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace {

using namespace dvv::net;

/// One specimen of every message type, with realistic payloads.
std::vector<Message> specimens() {
  const std::string state = "\x03opaque-state-bytes";
  return {
      ReplicateMsg{"cart", state},
      HintMsg{2, "cart", state},
      HintDeliverMsg{3, "k", state},
      HintAckMsg{2, "cart", 0x1122334455667788ULL},
      SyncReqMsg{42},
      SyncRespMsg{42, 3, 17, 9, 2, 4096},
      CoordReadReqMsg{5, "cart"},
      CoordReadRespMsg{5, true, state},
      CoordWriteReqMsg{6, "cart", state},
      CoordWriteRespMsg{6},
      JoinReqMsg{7},
      EpochAnnounceMsg{3, {0, 1, 2, 7}},
      TransferDoneMsg{3, 0x9ae16a3bULL, 7, 12, 4096},
  };
}

TEST(NetDecode, EveryTypeRoundTripsCanonically) {
  for (const Message& msg : specimens()) {
    const std::string bytes = encode_to_bytes(msg);
    const std::optional<Message> decoded = try_decode_from_bytes(bytes);
    ASSERT_TRUE(decoded.has_value()) << "type index " << msg.index();
    EXPECT_EQ(decoded->index(), msg.index());
    EXPECT_EQ(encode_to_bytes(*decoded), bytes)
        << "accepted frame not canonical, type index " << msg.index();
    EXPECT_EQ(wire_size(*decoded), bytes.size());
  }
}

TEST(NetDecode, EveryStrictPrefixIsRejected) {
  // LEB128 makes valid frames prefix-free: truncating mid-varint leaves
  // a continuation bit dangling, truncating a bytes field breaks its
  // length claim, and a fully-read frame with fields missing fails the
  // field count.  No prefix may decode — a torn TCP read must never
  // alias a shorter valid message.
  for (const Message& msg : specimens()) {
    const std::string bytes = encode_to_bytes(msg);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(try_decode_from_bytes(bytes.substr(0, len)).has_value())
          << "type index " << msg.index() << " accepted prefix of " << len
          << "/" << bytes.size() << " bytes";
    }
  }
}

TEST(NetDecode, RejectsTrailingGarbage) {
  for (const Message& msg : specimens()) {
    const std::string bytes = encode_to_bytes(msg) + '\0';
    EXPECT_FALSE(try_decode_from_bytes(bytes).has_value())
        << "type index " << msg.index() << " accepted a trailing byte";
  }
}

TEST(NetDecode, RejectsUnknownTag) {
  EXPECT_FALSE(try_decode_from_bytes(std::string(1, '\x63')).has_value());
  // 0x0e is the first out-of-range tag (0x0d is BatchMsg now — a bare
  // tag with no count is rejected as a truncated batch, not unknown).
  EXPECT_FALSE(try_decode_from_bytes(std::string(1, '\x0e')).has_value());
  EXPECT_FALSE(try_decode_from_bytes(std::string(1, '\x0d')).has_value());
}

TEST(NetDecode, RejectsMalformedEpochAnnounce) {
  // Tag 11 = EpochAnnounceMsg{epoch, count, members...}.  The member
  // list is the first variable-count field a peer controls: every
  // malformed shape must come back nullopt, never assert.
  const auto reject = [](const std::string& body) {
    EXPECT_FALSE(try_decode_from_bytes('\x0b' + body).has_value()) << body;
  };
  reject(std::string("\x03\x00", 2));              // empty member list
  reject(std::string("\x03\x02\x01\x01", 4));      // duplicate members
  reject(std::string("\x03\x02\x02\x01", 4));      // unsorted members
  reject(std::string("\x03\x09\x00\x01", 4));      // count overclaims bytes
  reject(std::string("\x03\x02\x00", 3));          // truncated member list
  // The canonical form is accepted and round-trips.
  const std::string good('\x0b' + std::string("\x03\x03\x00\x01\x07", 5));
  const std::optional<Message> ok = try_decode_from_bytes(good);
  ASSERT_TRUE(ok.has_value());
  const auto& m = std::get<EpochAnnounceMsg>(*ok);
  EXPECT_EQ(m.epoch, 3u);
  EXPECT_EQ(m.members, (std::vector<NodeId>{0, 1, 7}));
  EXPECT_EQ(encode_to_bytes(*ok), good);
}

TEST(NetDecode, RejectsTruncatedMembershipFrames) {
  // JoinReq (tag 10) with no node; TransferDone (tag 12) cut after the
  // partition field.
  EXPECT_FALSE(try_decode_from_bytes(std::string(1, '\x0a')).has_value());
  EXPECT_FALSE(
      try_decode_from_bytes(std::string("\x0c\x03\x2a", 3)).has_value());
}

TEST(NetDecode, RejectsNonCanonicalVarint) {
  // Tag 4 = SyncReqMsg.  [0x80 0x00] is 0 encoded with a padding byte —
  // a lenient LEB128 reader accepts it, the strict decode must not
  // (two wire forms for one value breaks canonical round-trips).
  EXPECT_FALSE(
      try_decode_from_bytes(std::string("\x04\x80\x00", 3)).has_value());
  // The minimal encoding of the same frame is accepted.
  const std::optional<Message> ok =
      try_decode_from_bytes(std::string("\x04\x00", 2));
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(std::holds_alternative<SyncReqMsg>(*ok));
}

TEST(NetDecode, RejectsNonCanonicalBool) {
  // Tag 7 = CoordReadRespMsg{req, found, state}: found must be 0 or 1.
  EXPECT_TRUE(
      try_decode_from_bytes(std::string("\x07\x05\x01\x00", 4)).has_value());
  EXPECT_FALSE(
      try_decode_from_bytes(std::string("\x07\x05\x02\x00", 4)).has_value());
}

TEST(NetDecode, RejectsHugeLengthClaim) {
  // ReplicateMsg (tag 0) whose key claims ~4 GiB against one actual
  // byte: StrictReader caps length claims by the bytes that exist, so
  // rejection happens before any allocation.
  std::string bytes(1, '\x00');
  bytes += std::string("\xff\xff\xff\xff\x0f", 5);  // varint 0xFFFFFFFF
  bytes += 'x';
  EXPECT_FALSE(try_decode_from_bytes(bytes).has_value());
}

TEST(NetDecode, RejectTaxonomyCounters) {
  dvv::obs::Registry& reg = dvv::obs::registry();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);

  const auto count = [&reg](const std::string& name) {
    return reg.counter_value(name);
  };
  const std::uint64_t base_total = count("net.decode_reject");
  const std::uint64_t base_replicate = count("net.decode_reject.replicate");
  const std::uint64_t base_unknown = count("net.decode_reject.unknown");

  // Readable tag, malformed body: total + per-type counter.
  const std::string torn = encode_to_bytes(specimens()[0]).substr(0, 3);
  EXPECT_FALSE(decode_or_reject(torn).has_value());
  EXPECT_EQ(count("net.decode_reject"), base_total + 1);
  EXPECT_EQ(count("net.decode_reject.replicate"), base_replicate + 1);

  // Unreadable / out-of-range tag: total + .unknown.
  EXPECT_FALSE(decode_or_reject(std::string(1, '\x63')).has_value());
  EXPECT_FALSE(decode_or_reject(std::string()).has_value());
  EXPECT_EQ(count("net.decode_reject"), base_total + 3);
  EXPECT_EQ(count("net.decode_reject.unknown"), base_unknown + 2);

  // A clean decode bumps nothing.
  EXPECT_TRUE(decode_or_reject(encode_to_bytes(specimens()[0])).has_value());
  EXPECT_EQ(count("net.decode_reject"), base_total + 3);

  reg.set_enabled(was_enabled);
}

TEST(NetDecode, SimTransportDropsInjectedGarbageAtDelivery) {
  SimTransport transport{SimTransportConfig{}};
  std::size_t delivered = 0;
  std::size_t replicate_seen = 0;
  // SimTransport delivers zero-copy views (Envelope::view); the garbage
  // riding the same tick also exercises the batch assembler's fallback
  // to per-frame delivery.
  transport.set_sink([&](const Envelope& envelope) {
    ++delivered;
    if (envelope.view != nullptr &&
        std::holds_alternative<ReplicateView>(*envelope.view)) {
      ++replicate_seen;
    }
  });

  // Garbage, a torn frame, and one well-formed frame, all injected as
  // raw bytes (the future socket's arrival path).
  transport.inject_raw(1, 2, std::string("\x80\x80\x80", 3));
  transport.inject_raw(1, 2, encode_to_bytes(specimens()[0]).substr(0, 2));
  transport.inject_raw(1, 2, encode_to_bytes(specimens()[0]));
  for (int tick = 0; tick < 8; ++tick) (void)transport.pump();

  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(replicate_seen, 1u);
  EXPECT_EQ(transport.stats().sent, 3u);
  EXPECT_EQ(transport.stats().decode_rejected, 2u);
  EXPECT_EQ(transport.stats().delivered, 1u);
}

}  // namespace
