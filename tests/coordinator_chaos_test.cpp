// Chaos property suite for the quorum-coordination engine
// (src/kv/coordinator.hpp) — the late/duplicate/stale reply-safety
// claims under real network weather, with CONCURRENT client operations.
//
// Claim 1 (exact mechanisms): run a seeded workload where many
// coordinated reads (R=3) and writes (W=3, short deadlines) are in
// flight AT ONCE over a manually-pumped SimTransport with message drop
// + duplication + reorder + partition/heal storms.  Requests time out
// mid-flight, their replies land late on retired ids, slots are reused
// by later requests — and none of it may corrupt a byte: once the
// network quiesces, the digest anti-entropy fixed point is
// BYTE-IDENTICAL to an unfaulted inline twin that ran the same writes
// synchronously.  (Client decisions are network-independent: every
// key's slot-0 replica coordinates every write and serves the context
// read, so every byte of divergence is attributable to the faults —
// and to any coordination-engine bug this test exists to catch.)  The
// VV baselines get the exemptions their own kernels force: server-VV
// is delivery-order-unsound outright, and client-VV can resurrect a
// context-discarded sibling from a stale fold (false concurrency) —
// for it the test pins the weaker sound property, no lost updates.
//
// Claim 2: the async trace replay (workload/replay.hpp, kTick ops +
// begin_read/begin_write) keeps the causal-history oracle's lockstep
// guarantee — fault decisions are drawn at send time in send order,
// payload-independent — so DVV/DVVSet stay EXACT under concurrent-op
// chaos while the Fig. 1b server-VV scheme loses updates.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/coordinator.hpp"
#include "kv/mechanism.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "oracle/audit.hpp"
#include "util/rng.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::net::SimTransport;
using dvv::util::Rng;

constexpr std::size_t kServers = 6;
constexpr std::size_t kKeys = 24;
constexpr std::size_t kClients = 5;
constexpr std::size_t kOps = 500;

ClusterConfig chaos_config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.servers = kServers;
  cfg.replication = 3;
  cfg.vnodes = 32;
  cfg.transport.kind = dvv::net::TransportKind::kSim;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  cfg.transport.sim.seed = seed ^ 0xc0042ULL;
  cfg.transport.sim.drop_probability = 0.10;
  cfg.transport.sim.duplicate_probability = 0.15;
  cfg.transport.sim.reorder_window = 4;
  cfg.transport.sim.auto_settle = false;  // real in-flight windows
  return cfg;
}

ClusterConfig twin_config() {
  ClusterConfig cfg;
  cfg.servers = kServers;
  cfg.replication = 3;
  cfg.vnodes = 32;
  cfg.transport.kind = dvv::net::TransportKind::kInline;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  return cfg;
}

/// The chaotic half: concurrent begin_read/begin_write requests with
/// short deadlines racing partitions, drops, dups and reorder.  Open
/// requests pile up, time out, and get harvested out of order; their
/// stragglers hit retired and reused slots.  Write contexts come from
/// the slot-0 coordinator's LOCAL state, so the write set is identical
/// to the twin's by construction.
template <typename M>
void run_concurrent(Cluster<M>& cluster, std::uint64_t seed) {
  Rng rng(seed);
  Rng net_rng(seed ^ 0x9e37ULL);
  std::vector<std::pair<std::uint64_t, bool>> in_flight;  // id, is_read

  // Harvesting discards the receipts on purpose: it frees the slots
  // for reuse, which is precisely what the stale-reply hygiene must
  // survive.
  const auto drain_completed = [&] {
    for (const std::uint64_t id : cluster.take_completed_requests()) {
      const auto it =
          std::find_if(in_flight.begin(), in_flight.end(),
                       [&](const auto& p) { return p.first == id; });
      ASSERT_NE(it, in_flight.end());
      if (it->second) {
        (void)cluster.take_read_result(id);
      } else {
        (void)cluster.take_write_receipt(id);
      }
      in_flight.erase(it);
    }
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    const bool do_partition = net_rng.chance(0.04);
    const bool do_heal = net_rng.chance(0.10);
    const bool do_pump = net_rng.chance(0.60);
    const auto groups = dvv::net::random_split<ReplicaId>(net_rng, kServers);

    if (do_partition && !cluster.transport().partitioned()) {
      cluster.partition(groups, "chaos");
    } else if (do_heal && cluster.transport().partitioned()) {
      cluster.heal();
    }
    if (do_pump) {
      cluster.pump();
      drain_completed();
    }

    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const ReplicaId coordinator = cluster.preference_list(key)[0];
    const std::size_t client = rng.index(kClients);
    const bool rmw = rng.chance(0.7);
    typename M::Context ctx{};
    if (rmw) {
      // Context from the coordinator's LOCAL state: no transport fault
      // can touch it, so the twin computes the identical context.
      ctx = cluster.get(key, coordinator).context;
    }
    dvv::kv::WriteOptions wopts;
    wopts.write_quorum = 3;
    wopts.deadline_ticks = 3;  // short: timeouts are common, on purpose
    in_flight.emplace_back(
        cluster.begin_write(key, coordinator, dvv::kv::client_actor(client), ctx,
                            "w" + std::to_string(op), cluster.preference_list(key),
                            wopts),
        false);

    if (rng.chance(0.5)) {
      // A concurrent quorum read whose replies race everything above.
      dvv::kv::ReadOptions ropts;
      ropts.deadline_ticks = 2 + rng.index(4);
      in_flight.emplace_back(
          cluster.begin_read_at(key, coordinator, 3, ropts), true);
    }
    drain_completed();
  }

  // Quiesce the request plane: finalize whatever is still pending and
  // harvest everything (frees every slot; stragglers in the queues will
  // land on retired generations during the final drain).
  for (const auto& [id, is_read] : in_flight) {
    (void)cluster.finalize_request(id);
  }
  drain_completed();
  ASSERT_TRUE(in_flight.empty());
}

/// The unfaulted half: the same writes, synchronous, inline.
template <typename M>
void run_twin(Cluster<M>& cluster, std::uint64_t seed) {
  Rng rng(seed);
  Rng net_rng(seed ^ 0x9e37ULL);  // consumed identically, acted on never
  for (std::size_t op = 0; op < kOps; ++op) {
    (void)net_rng.chance(0.04);
    (void)net_rng.chance(0.10);
    (void)net_rng.chance(0.60);
    (void)dvv::net::random_split<ReplicaId>(net_rng, kServers);

    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const ReplicaId coordinator = cluster.preference_list(key)[0];
    const std::size_t client = rng.index(kClients);
    const bool rmw = rng.chance(0.7);
    typename M::Context ctx{};
    if (rmw) ctx = cluster.get(key, coordinator).context;
    cluster.put(key, coordinator, dvv::kv::client_actor(client), ctx,
                "w" + std::to_string(op), cluster.preference_list(key));
    if (rng.chance(0.5)) {
      (void)rng.index(4);  // the faulted run's read deadline draw
    }
  }
}

/// Quiesce the network and drive repair to its fixed point.
template <typename M>
void quiesce(Cluster<M>& cluster) {
  auto* sim = dynamic_cast<SimTransport*>(&cluster.transport());
  if (sim != nullptr) sim->set_fault_rates(0.0, 0.0, 0);
  cluster.heal();
  cluster.pump_all();
  cluster.anti_entropy_digest();
}

/// Per-(replica, key) sibling VALUE sets (the soundness comparison for
/// mechanisms whose byte encodings are delivery-order artifacts).
template <typename M>
std::map<std::pair<ReplicaId, Key>, std::set<std::string>> full_values(
    Cluster<M>& cluster) {
  std::map<std::pair<ReplicaId, Key>, std::set<std::string>> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      auto values = cluster.mechanism().values_of(*cluster.replica(r).find(key));
      out[{r, key}] = std::set<std::string>(values.begin(), values.end());
    }
  }
  return out;
}

template <typename M>
std::map<std::pair<ReplicaId, Key>, std::string> full_state(Cluster<M>& cluster) {
  std::map<std::pair<ReplicaId, Key>, std::string> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      dvv::codec::Writer w;
      dvv::codec::encode(w, *cluster.replica(r).find(key));
      const auto* p = reinterpret_cast<const char*>(w.buffer().data());
      out.emplace(std::make_pair(r, key), std::string(p, w.size()));
    }
  }
  return out;
}

template <typename M>
class CoordinatorChaosTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(CoordinatorChaosTest, AllMechanisms);

TYPED_TEST(CoordinatorChaosTest,
           ConcurrentOpsUnderChaosConvergeToUnfaultedTwinFixedPoint) {
  for (const std::uint64_t seed : {7ULL, 123ULL, 20120716ULL}) {
    Cluster<TypeParam> faulted(chaos_config(seed), {});
    Cluster<TypeParam> twin(twin_config(), {});
    run_concurrent(faulted, seed);
    run_twin(twin, seed);

    // The chaos — including the COORDINATION chaos — must have actually
    // happened: messages died and duplicated, requests timed out, and
    // replies landed late or on reused slots.
    const auto& net = faulted.transport().stats();
    ASSERT_GT(net.dropped, 0u) << "seed " << seed;
    ASSERT_GT(net.duplicated, 0u);
    const auto& coord = faulted.coord_stats();
    ASSERT_GT(coord.timeouts, 0u) << "no request ever timed out — too tame";
    ASSERT_GT(coord.late_replies_dropped + coord.stale_replies_dropped, 0u)
        << "no reply ever arrived after completion — too tame";
    ASSERT_GT(coord.duplicate_replies_dropped, 0u);

    quiesce(faulted);
    quiesce(twin);

    // Exact mechanisms: byte-identical fixed points — every late reply,
    // duplicate ack and reused slot left NO trace the clocks could not
    // repair.  Two exemptions, both DELIVERY-order artifacts of the
    // baselines themselves, not of the engine:
    //   * server-VV falsely orders racing clients, so which sibling
    //     survives depends on delivery order (see transport_chaos_test);
    //   * client-VV discards a sibling at write time using the JOINED
    //     read context, but its pairwise VV sync cannot re-prove a
    //     dominance no single surviving clock carries — so folding a
    //     stale replica state back in can RESURRECT the discarded
    //     sibling (false concurrency, the E8 failure shape).  This
    //     workload's reordered, partially-failed fan-outs make such
    //     stale folds routine.
    constexpr bool kByteExactUnderChaos =
        !std::is_same_v<TypeParam, dvv::kv::ServerVvMechanism> &&
        !std::is_same_v<TypeParam, dvv::kv::ClientVvMechanism>;
    if constexpr (kByteExactUnderChaos) {
      ASSERT_EQ(full_state(faulted), full_state(twin))
          << "concurrent coordination chaos corrupted state (seed " << seed
          << ")";
    }
    if constexpr (std::is_same_v<TypeParam, dvv::kv::ClientVvMechanism>) {
      // Still SOUND: resurrection adds false siblings, it never loses
      // an update — every value the twin retains, the faulted run must
      // retain too.
      const auto faulted_values = full_values(faulted);
      const auto twin_values = full_values(twin);
      for (const auto& [where, values] : twin_values) {
        const auto it = faulted_values.find(where);
        ASSERT_NE(it, faulted_values.end());
        for (const auto& v : values) {
          EXPECT_TRUE(it->second.contains(v))
              << "client-VV lost update " << v << " (seed " << seed << ")";
        }
      }
    }

    // Internal convergence for every mechanism, and a true fixed point.
    const auto snapshot = full_state(faulted);
    for (const auto& [where, bytes] : snapshot) {
      const auto& [replica, key] = where;
      for (const ReplicaId peer : faulted.preference_list(key)) {
        const auto it = snapshot.find(std::make_pair(peer, key));
        if (it == snapshot.end()) continue;
        EXPECT_EQ(bytes, it->second)
            << "key " << key << " differs between " << replica << " and "
            << peer << " (seed " << seed << ")";
      }
    }
    EXPECT_EQ(faulted.anti_entropy_digest().stats.keys_shipped, 0u);
    EXPECT_EQ(faulted.anti_entropy(), 0u);
    EXPECT_EQ(faulted.requests_in_flight(), 0u)
        << "every request slot must be retired by quiesce";
  }
}

// ---- async trace replay: ticks, determinism, and the oracle ----------------

dvv::workload::WorkloadSpec async_spec(std::uint64_t seed) {
  dvv::workload::WorkloadSpec spec;
  spec.keys = 8;
  spec.zipf_skew = 0.99;
  spec.clients = 12;
  spec.operations = 600;
  spec.read_before_write = 0.7;
  spec.replicate_probability = 0.8;
  spec.anti_entropy_every = 50;
  spec.partition_probability = 0.05;
  spec.heal_probability = 0.15;
  spec.servers = kServers;
  spec.async_quorum = true;
  spec.read_quorum = 2;
  spec.write_quorum = 2;
  spec.tick_probability = 0.7;
  spec.deadline_ticks = 6;
  spec.seed = seed;
  return spec;
}

TEST(AsyncReplay, TraceCarriesTickEvents) {
  const auto trace = dvv::workload::generate_trace(async_spec(5), 3);
  EXPECT_TRUE(trace.async_quorum);
  EXPECT_EQ(trace.read_quorum, 2u);
  std::size_t ticks = 0;
  for (const auto& op : trace.ops) {
    if (op.kind == dvv::workload::TraceOp::Kind::kTick) ++ticks;
  }
  EXPECT_GT(ticks, 0u) << "async traces must interleave network time";

  dvv::workload::WorkloadSpec sync = async_spec(5);
  sync.async_quorum = false;
  const auto sync_trace = dvv::workload::generate_trace(sync, 3);
  for (const auto& op : sync_trace.ops) {
    EXPECT_NE(op.kind, dvv::workload::TraceOp::Kind::kTick)
        << "synchronous traces carry no ticks";
  }
}

TEST(AsyncReplay, DeterministicAndKeepsOpsInFlight) {
  const auto spec = async_spec(11);
  const auto trace = dvv::workload::generate_trace(spec, 3);
  ClusterConfig cfg = chaos_config(11);

  Cluster<dvv::kv::DvvMechanism> a(cfg, {});
  Cluster<dvv::kv::DvvMechanism> b(cfg, {});
  const auto stats_a = dvv::workload::replay(a, trace);
  const auto stats_b = dvv::workload::replay(b, trace);

  EXPECT_GT(stats_a.ticks, 0u);
  EXPECT_GT(stats_a.max_in_flight, 1u)
      << "concurrent client ops must actually overlap";
  EXPECT_EQ(stats_a.final_total_bytes, stats_b.final_total_bytes);
  EXPECT_EQ(stats_a.op_timeouts, stats_b.op_timeouts);
  EXPECT_EQ(stats_a.get_total_bytes.mean(), stats_b.get_total_bytes.mean());
}

TEST(AsyncReplay, OracleStaysLockstepDvvExactServerVvLosesUpdates) {
  std::uint64_t server_vv_anomalies = 0;
  for (const std::uint64_t seed : {3ULL, 11ULL, 77ULL}) {
    const auto spec = async_spec(seed);
    const ClusterConfig cfg = chaos_config(seed);

    const auto dvv_run =
        dvv::oracle::mirrored_run(spec, cfg, dvv::kv::DvvMechanism{});
    EXPECT_TRUE(dvv_run.report.exact())
        << "DVV must track causality exactly under concurrent-op chaos "
        << "(seed " << seed << "): lost " << dvv_run.report.lost_updates()
        << ", false " << dvv_run.report.false_siblings();
    EXPECT_GT(dvv_run.subject_stats.max_in_flight, 1u);

    const auto dvvset_run =
        dvv::oracle::mirrored_run(spec, cfg, dvv::kv::DvvSetMechanism{});
    EXPECT_TRUE(dvvset_run.report.exact()) << "seed " << seed;

    const auto vv_run =
        dvv::oracle::mirrored_run(spec, cfg, dvv::kv::ServerVvMechanism{});
    server_vv_anomalies += vv_run.report.lost_updates();
  }
  EXPECT_GT(server_vv_anomalies, 0u)
      << "the Fig. 1b scheme must lose racing updates under async chaos";
}

}  // namespace
