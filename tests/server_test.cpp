// dvvd lifecycle tests: the socket server over real TCP connections.
//
// Every test talks to a live Server (ephemeral port, 4 shards, 8
// replicas) through the blocking Client — the same framing code the
// bench driver uses — or through send_raw() for hostile bytes.  The
// suite covers the connection-lifecycle edges the event loop must
// survive:
//
//   * frames split across arbitrarily many reads;
//   * a client disconnecting mid-request (torn frame, then EOF);
//   * oversized / zero length claims rejected before any allocation,
//     with the connection closed and OTHER connections unaffected;
//   * payload-level rejects (bad opcode, trailing junk, bad token)
//     answered with an error response on a stream that continues;
//   * pipelined FIFO response ordering with request-id echo;
//   * a slow reader pausing only itself.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kv/store.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace dvv {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kv::StoreConfig config;
    config.servers = 8;
    config.transport.kind = net::TransportKind::kThreaded;
    config.transport.threaded.shards = 4;
    store_ = kv::make_store("dvv", config);
    ASSERT_NE(store_, nullptr);
    server_ = std::make_unique<server::Server>(*store_, server::ServerConfig{});
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

  std::unique_ptr<kv::Store> store_;
  std::unique_ptr<server::Server> server_;
};

std::string framed_get(std::uint64_t request_id, std::string_view key) {
  std::string payload;
  server::encode_get_request(payload, request_id, key);
  std::string out;
  server::append_frame(out, payload);
  return out;
}

std::string framed_put(std::uint64_t request_id, std::string_view key,
                       std::string_view token, std::string_view value,
                       std::uint64_t client_id) {
  std::string payload;
  server::encode_put_request(payload, request_id, key, token, value, client_id);
  std::string out;
  server::append_frame(out, payload);
  return out;
}

TEST_F(ServerTest, GetPutTokenRoundTrip) {
  server::Client client(port());
  server::Response resp;

  // Blind put, then read back.
  ASSERT_TRUE(client.put("alpha", /*token=*/"", "v1", /*client_id=*/1, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
  EXPECT_GE(resp.replicated_to, 1u);

  ASSERT_TRUE(client.get("alpha", resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  EXPECT_TRUE(resp.found);
  ASSERT_EQ(resp.values.size(), 1u);
  EXPECT_EQ(resp.values[0], "v1");
  ASSERT_FALSE(resp.token_bytes.empty());

  // Token round-trip: the returned context supersedes v1, so the next
  // read sees exactly the new value — the paper's client contract.
  const std::string token = resp.token_bytes;
  ASSERT_TRUE(client.put("alpha", token, "v2", 1, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
  ASSERT_TRUE(client.get("alpha", resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  ASSERT_EQ(resp.values.size(), 1u);
  EXPECT_EQ(resp.values[0], "v2");
}

TEST_F(ServerTest, MissingKeyIsNotFound) {
  server::Client client(port());
  server::Response resp;
  ASSERT_TRUE(client.get("never-written", resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  EXPECT_FALSE(resp.found);
  EXPECT_TRUE(resp.values.empty());
}

TEST_F(ServerTest, BlindConcurrentWritesSurfaceAsSiblings) {
  server::Client client(port());
  server::Response resp;
  ASSERT_TRUE(client.put("clash", "", "from-a", 1, resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  ASSERT_TRUE(client.put("clash", "", "from-b", 2, resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  ASSERT_TRUE(client.get("clash", resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  // Two blind writes are concurrent: dvv keeps both as siblings.
  EXPECT_EQ(resp.values.size(), 2u);
}

TEST_F(ServerTest, FrameSplitAcrossManyReadsStillParses) {
  server::Client client(port());
  const std::string bytes = framed_put(7, "split-key", "", "split-value", 3);
  // One byte per write(): the decoder must reassemble across reads.
  for (char c : bytes) {
    client.send_raw(std::string_view(&c, 1));
  }
  server::Response resp;
  ASSERT_TRUE(client.read_response(/*is_get=*/false, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
  EXPECT_EQ(resp.request_id, 7u);

  server::Response check;
  ASSERT_TRUE(client.get("split-key", check));
  ASSERT_EQ(check.values.size(), 1u);
  EXPECT_EQ(check.values[0], "split-value");
}

TEST_F(ServerTest, DisconnectMidRequestLeavesServerServing) {
  {
    server::Client torn(port());
    const std::string bytes = framed_put(1, "torn-key", "", "torn-value", 9);
    // Half a frame, then EOF: the server must discard the torn request
    // silently and reap the connection.
    torn.send_raw(std::string_view(bytes.data(), bytes.size() / 2));
    torn.shutdown_write();
    std::string payload;
    EXPECT_FALSE(torn.read_frame(payload));  // no response, clean close
  }
  // The shard that held the torn connection still serves new clients.
  server::Client client(port());
  server::Response resp;
  ASSERT_TRUE(client.put("after-torn", "", "ok", 1, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
  // The torn half-frame was never executed.
  ASSERT_TRUE(client.get("torn-key", resp));
  EXPECT_FALSE(resp.found);
}

TEST_F(ServerTest, OversizedLengthClaimClosesConnectionOnly) {
  server::Client hostile(port());
  // A forged 16 MiB claim: must poison the stream (connection closed)
  // without the server buffering anything near the claim.
  const std::uint32_t claim = 16u << 20;
  std::string header;
  header.push_back(static_cast<char>(claim & 0xff));
  header.push_back(static_cast<char>((claim >> 8) & 0xff));
  header.push_back(static_cast<char>((claim >> 16) & 0xff));
  header.push_back(static_cast<char>((claim >> 24) & 0xff));
  header += "some bytes that never amount to the claim";
  hostile.send_raw(header);
  std::string payload;
  EXPECT_FALSE(hostile.read_frame(payload));  // server closed it

  // Other (and new) connections are untouched.
  server::Client client(port());
  server::Response resp;
  ASSERT_TRUE(client.put("after-oversize", "", "ok", 1, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
}

TEST_F(ServerTest, ZeroLengthFrameClosesConnection) {
  server::Client hostile(port());
  hostile.send_raw(std::string(4, '\0'));  // length claim 0: malformed
  std::string payload;
  EXPECT_FALSE(hostile.read_frame(payload));

  server::Client client(port());
  server::Response resp;
  ASSERT_TRUE(client.get("anything", resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
}

TEST_F(ServerTest, BadOpcodeEarnsErrorAndStreamContinues) {
  server::Client client(port());
  std::string payload;
  server::append_varint(payload, 99);  // unknown opcode
  server::append_varint(payload, 42);  // request id
  std::string frame;
  server::append_frame(frame, payload);
  client.send_raw(frame);

  server::Response resp;
  ASSERT_TRUE(client.read_response(/*is_get=*/false, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kBadRequest);

  // Same connection keeps working: payload rejects are not poison.
  ASSERT_TRUE(client.put("after-bad-opcode", "", "ok", 1, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
}

TEST_F(ServerTest, TrailingBytesEarnErrorAndStreamContinues) {
  server::Client client(port());
  std::string payload;
  server::encode_get_request(payload, 5, "key");
  payload += "junk";  // bytes after the last field: strict reject
  std::string frame;
  server::append_frame(frame, payload);
  client.send_raw(frame);

  server::Response resp;
  ASSERT_TRUE(client.read_response(/*is_get=*/true, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kBadRequest);
  EXPECT_EQ(resp.request_id, 5u);

  ASSERT_TRUE(client.get("key", resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
}

TEST_F(ServerTest, BadTokenPutEarnsBadTokenAndStreamContinues) {
  server::Client client(port());
  server::Response resp;
  // Structurally a fine PUT; the token bytes fail the store's strict
  // token decode — kBadToken, state untouched, stream continues.
  ASSERT_TRUE(client.put("tok-key", "not a real token", "v", 1, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kBadToken);

  ASSERT_TRUE(client.get("tok-key", resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  EXPECT_FALSE(resp.found);  // the rejected put wrote nothing

  ASSERT_TRUE(client.put("tok-key", "", "v", 1, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
}

TEST_F(ServerTest, PipelinedResponsesAreFifoWithIdEcho) {
  server::Client client(port());
  // Scatter keys across coordinators so cross-shard forwarding is in
  // play, then require strict FIFO release with id echo.
  constexpr std::uint64_t kCount = 64;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    client.send_put(/*request_id=*/1000 + i,
                    "pipe-" + std::to_string(i % 13), "",
                    "v" + std::to_string(i), /*client_id=*/i % 3);
  }
  for (std::uint64_t i = 0; i < kCount; ++i) {
    server::Response resp;
    ASSERT_TRUE(client.read_response(/*is_get=*/false, resp)) << i;
    EXPECT_EQ(resp.request_id, 1000 + i) << "response order broke at " << i;
    EXPECT_EQ(resp.status, server::ResponseStatus::kOk);
  }
}

TEST_F(ServerTest, ManyKeysCrossShardRoundTrips) {
  server::Client client(port());
  server::Response resp;
  // Enough distinct keys that every shard coordinates some of them.
  for (int i = 0; i < 40; ++i) {
    const std::string key = "fan-" + std::to_string(i);
    ASSERT_TRUE(client.put(key, "", "val-" + std::to_string(i), 1, resp));
    ASSERT_EQ(resp.status, server::ResponseStatus::kOk) << key;
  }
  for (int i = 0; i < 40; ++i) {
    const std::string key = "fan-" + std::to_string(i);
    ASSERT_TRUE(client.get(key, resp));
    ASSERT_EQ(resp.status, server::ResponseStatus::kOk) << key;
    ASSERT_EQ(resp.values.size(), 1u) << key;
    EXPECT_EQ(resp.values[0], "val-" + std::to_string(i));
  }
}

TEST_F(ServerTest, SlowReaderDoesNotStallOtherConnections) {
  // A connection that pipelines requests but never reads responses
  // accumulates outbuf server-side; other connections on the same
  // shards must keep round-tripping.
  server::Client slow(port());
  constexpr std::uint64_t kBacklog = 256;
  for (std::uint64_t i = 0; i < kBacklog; ++i) {
    slow.send_put(i, "slow-" + std::to_string(i % 7), "", "x", 1);
  }
  // Interleave: several fast clients complete full round trips while
  // the slow reader's responses sit unread.
  for (int c = 0; c < 4; ++c) {
    server::Client fast(port());
    server::Response resp;
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(fast.put("fast-" + std::to_string(c), "", "y", 2, resp));
      ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
      ASSERT_TRUE(fast.get("fast-" + std::to_string(c), resp));
      ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
    }
  }
  // The slow reader's responses were all preserved, in order.
  for (std::uint64_t i = 0; i < kBacklog; ++i) {
    server::Response resp;
    ASSERT_TRUE(slow.read_response(/*is_get=*/false, resp)) << i;
    EXPECT_EQ(resp.request_id, i);
  }
}

TEST_F(ServerTest, ManyConcurrentClientConnections) {
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      server::Client client(port());
      server::Response resp;
      for (int i = 0; i < 16; ++i) {
        const std::string key = "conc-" + std::to_string(c);
        if (!client.put(key, "", "v" + std::to_string(i),
                        static_cast<std::uint64_t>(c), resp) ||
            resp.status != server::ResponseStatus::kOk) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (!client.get(key, resp) ||
            resp.status != server::ResponseStatus::kOk || !resp.found) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerAdminTest, JoinLeaveRingInfoOverSocket) {
  // A store with headroom: 4 seed members over 8 provisioned replicas.
  kv::StoreConfig config;
  config.servers = 4;
  config.capacity = 8;
  config.transport.kind = net::TransportKind::kThreaded;
  config.transport.threaded.shards = 2;
  auto store = kv::make_store("dvv", config);
  ASSERT_NE(store, nullptr);
  server::Server srv(*store, server::ServerConfig{});
  srv.start();

  server::Client client(srv.port());
  server::Response resp;
  ASSERT_TRUE(client.ring_info(resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  EXPECT_EQ(resp.epoch, 0u);
  EXPECT_EQ(resp.members, (std::vector<std::uint64_t>{0, 1, 2, 3}));

  // Seed data, then grow the ring while the connection stays live.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client.put("adm-" + std::to_string(i), "", "v", 1, resp));
    ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  }
  ASSERT_TRUE(client.join(4, resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  EXPECT_EQ(resp.epoch, 1u);

  // Admin preconditions surface as kBadRequest, never an abort: joining
  // a member, leaving a non-member, naming a slot beyond capacity.
  ASSERT_TRUE(client.join(4, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kBadRequest);
  ASSERT_TRUE(client.leave(7, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kBadRequest);
  ASSERT_TRUE(client.join(99, resp));
  EXPECT_EQ(resp.status, server::ResponseStatus::kBadRequest);

  ASSERT_TRUE(client.leave(0, resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  EXPECT_EQ(resp.epoch, 2u);
  ASSERT_TRUE(client.ring_info(resp));
  EXPECT_EQ(resp.epoch, 2u);
  EXPECT_EQ(resp.members, (std::vector<std::uint64_t>{1, 2, 3, 4}));

  // Every pre-churn write is still served under the new ring — the
  // join/leave responses arrived only after the rebalance completed.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client.get("adm-" + std::to_string(i), resp));
    ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
    EXPECT_TRUE(resp.found) << i;
  }
  srv.stop();
}

TEST_F(ServerTest, StopWhileClientsConnectedShutsDownCleanly) {
  server::Client a(port());
  server::Client b(port());
  server::Response resp;
  ASSERT_TRUE(a.put("pre-stop", "", "v", 1, resp));
  ASSERT_EQ(resp.status, server::ResponseStatus::kOk);
  // Leave b idle and a with buffered kernel bytes; stop() must close
  // both and quiesce without deadlock.
  b.send_raw(framed_get(1, "pre-stop"));
  server_->stop();
  std::string payload;
  EXPECT_FALSE(a.read_frame(payload));
}

}  // namespace
}  // namespace dvv
