// Tests for version vectors with exceptions (core/vve.hpp) — the WinFS
// mechanism of the paper's §3 — and its storage kernel.  The load-
// bearing properties: VVE represents exactly the same event sets as
// explicit causal histories (randomized equivalence), and the storage
// kernel is exact against both the DVV and history kernels.
#include "core/vve.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "core/causality.hpp"
#include "core/dvv_kernel.hpp"
#include "core/history_kernel.hpp"
#include "util/rng.hpp"

namespace {

using dvv::core::CausalHistory;
using dvv::core::Dot;
using dvv::core::Ordering;
using dvv::core::VersionVector;
using dvv::core::VersionVectorWithExceptions;
using dvv::core::VveSiblings;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;

TEST(Vve, EmptyContainsNothing) {
  VersionVectorWithExceptions vve;
  EXPECT_TRUE(vve.empty());
  EXPECT_FALSE(vve.contains(Dot{kA, 1}));
  EXPECT_EQ(vve.slot_count(), 0u);
}

TEST(Vve, SequentialAddsBehaveLikePlainVv) {
  VersionVectorWithExceptions vve;
  vve.add(Dot{kA, 1});
  vve.add(Dot{kA, 2});
  vve.add(Dot{kA, 3});
  EXPECT_TRUE(vve.contains(Dot{kA, 2}));
  EXPECT_FALSE(vve.contains(Dot{kA, 4}));
  EXPECT_EQ(vve.exception_count(), 0u);
  EXPECT_EQ(vve.slot_count(), 1u);  // just the base counter
}

TEST(Vve, GapCreatesExceptions) {
  VersionVectorWithExceptions vve;
  vve.add(Dot{kA, 4});  // A4 without A1..A3
  EXPECT_TRUE(vve.contains(Dot{kA, 4}));
  EXPECT_FALSE(vve.contains(Dot{kA, 1}));
  EXPECT_FALSE(vve.contains(Dot{kA, 3}));
  EXPECT_EQ(vve.exception_count(), 3u);
  EXPECT_EQ(vve.slot_count(), 4u);  // base + 3 exceptions
}

TEST(Vve, FillingHolesRemovesExceptions) {
  VersionVectorWithExceptions vve;
  vve.add(Dot{kA, 4});
  vve.add(Dot{kA, 2});
  EXPECT_TRUE(vve.contains(Dot{kA, 2}));
  EXPECT_FALSE(vve.contains(Dot{kA, 1}));
  EXPECT_EQ(vve.exception_count(), 2u);
  vve.add(Dot{kA, 1});
  vve.add(Dot{kA, 3});
  EXPECT_EQ(vve.exception_count(), 0u);
  EXPECT_EQ(vve.slot_count(), 1u) << "fully contiguous again";
}

TEST(Vve, AddIsIdempotent) {
  VersionVectorWithExceptions vve;
  vve.add(Dot{kA, 3});
  const auto snapshot = vve;
  vve.add(Dot{kA, 3});
  vve.add(Dot{kA, 2});
  vve.add(Dot{kA, 2});
  EXPECT_EQ(vve.exception_count(), 1u);
  EXPECT_NE(vve, snapshot);
}

TEST(Vve, ExpressesTheDvvGapHistory) {
  // The paper's §3 point: a DVV ((A,4), [A->2]) has history {A1,A2,A4};
  // VVE can say the same thing.
  VersionVectorWithExceptions vve;
  vve.add(Dot{kA, 1});
  vve.add(Dot{kA, 2});
  vve.add(Dot{kA, 4});
  EXPECT_TRUE(vve.contains(Dot{kA, 1}));
  EXPECT_TRUE(vve.contains(Dot{kA, 2}));
  EXPECT_FALSE(vve.contains(Dot{kA, 3}));
  EXPECT_TRUE(vve.contains(Dot{kA, 4}));
}

TEST(Vve, MergeIsSetUnion) {
  VersionVectorWithExceptions a, b;
  a.add(Dot{kA, 1});
  a.add(Dot{kA, 4});  // {A1, A4}
  b.add(Dot{kA, 2});  // {A1?, no: just A2 with exception at 1}
  b.add(Dot{kB, 1});
  a.merge(b);
  EXPECT_TRUE(a.contains(Dot{kA, 1}));
  EXPECT_TRUE(a.contains(Dot{kA, 2}));
  EXPECT_FALSE(a.contains(Dot{kA, 3}));
  EXPECT_TRUE(a.contains(Dot{kA, 4}));
  EXPECT_TRUE(a.contains(Dot{kB, 1}));
}

TEST(Vve, CompareMatchesSetSemantics) {
  VersionVectorWithExceptions small, big, other;
  small.add(Dot{kA, 1});
  big.add(Dot{kA, 1});
  big.add(Dot{kA, 2});
  other.add(Dot{kB, 1});
  EXPECT_EQ(small.compare(big), Ordering::kBefore);
  EXPECT_EQ(big.compare(small), Ordering::kAfter);
  EXPECT_EQ(small.compare(small), Ordering::kEqual);
  EXPECT_EQ(small.compare(other), Ordering::kConcurrent);
}

TEST(Vve, GapsCompareConcurrent) {
  // {A1,A2} vs {A1,A3}: neither includes the other.
  VersionVectorWithExceptions a, b;
  a.add(Dot{kA, 1});
  a.add(Dot{kA, 2});
  b.add(Dot{kA, 1});
  b.add(Dot{kA, 3});
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
}

// Randomized equivalence with explicit causal histories: every
// operation sequence must leave VVE and CausalHistory representing the
// same set, with the same pairwise comparisons.
TEST(Vve, RandomizedEquivalenceWithCausalHistory) {
  dvv::util::Rng rng(0x77e);
  for (int trial = 0; trial < 300; ++trial) {
    VersionVectorWithExceptions vve_a, vve_b;
    CausalHistory h_a, h_b;
    for (int step = 0; step < 30; ++step) {
      const Dot d{rng.below(3), rng.below(8) + 1};
      if (rng.chance(0.5)) {
        vve_a.add(d);
        h_a.insert(d);
      } else {
        vve_b.add(d);
        h_b.insert(d);
      }
      if (rng.chance(0.1)) {
        vve_a.merge(vve_b);
        h_a.merge(h_b);
      }
    }
    ASSERT_EQ(vve_a.to_history(), h_a) << "trial " << trial;
    ASSERT_EQ(vve_b.to_history(), h_b) << "trial " << trial;
    ASSERT_EQ(vve_a.compare(vve_b), h_a.compare(h_b)) << "trial " << trial;
  }
}

// The storage kernel: exact vs the DVV kernel on random traces (both
// are exact vs the oracle, hence vs each other — this checks VVE's
// bookkeeping under the real workflow).
TEST(VveKernel, MatchesDvvKernelOnRandomTraces) {
  dvv::util::Rng rng(0x77e2);
  for (int trial = 0; trial < 200; ++trial) {
    constexpr std::size_t kServers = 3;
    std::array<VveSiblings<std::string>, kServers> vve_replica;
    std::array<dvv::core::DvvSiblings<std::string>, kServers> dvv_replica;
    std::array<VersionVectorWithExceptions, 4> vve_ctx;
    std::array<VersionVector, 4> dvv_ctx;

    const auto steps = 5 + rng.below(20);
    for (std::uint64_t step = 0; step < steps; ++step) {
      const auto server = rng.index(kServers);
      const auto client = rng.index(4);
      switch (rng.below(4)) {
        case 0:
          vve_ctx[client] = vve_replica[server].context();
          dvv_ctx[client] = dvv_replica[server].context();
          break;
        case 1: {
          const std::string v = "w" + std::to_string(step);
          vve_replica[server].update(server, vve_ctx[client], v);
          dvv_replica[server].update(server, dvv_ctx[client], v);
          break;
        }
        case 2: {
          const std::string v = "b" + std::to_string(step);
          vve_replica[server].update(server, VersionVectorWithExceptions{}, v);
          dvv_replica[server].update(server, VersionVector{}, v);
          break;
        }
        case 3: {
          const auto other = rng.index(kServers);
          vve_replica[server].sync(vve_replica[other]);
          dvv_replica[server].sync(dvv_replica[other]);
          break;
        }
      }
      for (std::size_t r = 0; r < kServers; ++r) {
        std::multiset<std::string> vve_values, dvv_values;
        for (const auto& v : vve_replica[r].versions()) vve_values.insert(v.value);
        for (const auto& v : dvv_replica[r].versions()) dvv_values.insert(v.value);
        ASSERT_EQ(vve_values, dvv_values)
            << "trial " << trial << " step " << step << " replica " << r;
      }
    }
  }
}

// The §3 size claim: in the storage workflow the ragged part of any
// version's history is AT MOST one event deep (the version's own dot
// above the context), so VVE's exception lists stay tiny and a DVV's
// single dot carries the same information — measured here.
TEST(VveKernel, WorkflowHistoriesHaveBoundedRaggedness) {
  dvv::util::Rng rng(0x77e3);
  for (int trial = 0; trial < 100; ++trial) {
    std::array<VveSiblings<std::string>, 3> replica;
    std::array<VersionVectorWithExceptions, 4> ctx;
    for (int step = 0; step < 30; ++step) {
      const auto server = rng.index(3);
      const auto client = rng.index(4);
      switch (rng.below(3)) {
        case 0:
          ctx[client] = replica[server].context();
          break;
        case 1:
          replica[server].update(server, ctx[client], "w");
          break;
        case 2:
          replica[server].sync(replica[rng.index(3)]);
          break;
      }
    }
    // Contexts are unions of full histories; each version is context +
    // one dot.  Exceptions only ever mark concurrent siblings' dots, of
    // which there are at most a handful.
    for (const auto& r : replica) {
      for (const auto& v : r.versions()) {
        EXPECT_LE(v.clock.exception_count(), 8u)
            << "workflow histories stay nearly contiguous: " << v.clock.to_string();
      }
    }
  }
}

TEST(VveKernel, Fig1cScenario) {
  // The same scenario as the DVV Fig. 1c test — VVE expresses it too,
  // just with exception bookkeeping instead of a dot.
  VveSiblings<std::string> a;
  a.update(kA, VersionVectorWithExceptions{}, "v1");
  const auto stale = a.context();
  a.update(kA, stale, "v2");
  a.update(kA, stale, "v3");
  ASSERT_EQ(a.sibling_count(), 2u);
  EXPECT_EQ(a.versions()[0].clock.compare(a.versions()[1].clock),
            Ordering::kConcurrent);
  // v3's history is {A1, A3}: base 3 with exception {2}.
  EXPECT_TRUE(a.versions()[1].clock.contains(Dot{kA, 3}));
  EXPECT_FALSE(a.versions()[1].clock.contains(Dot{kA, 2}));
}

}  // namespace
