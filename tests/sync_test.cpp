// Unit tests for the digest-based anti-entropy subsystem (src/sync):
// per-key state digests, the fixed-fanout Merkle tree, the pairwise
// tree walk, the DigestIndex dirty-key plumbing, the cluster-level
// digest session (including the ownership filter), and the background
// AAE events in the simulator.  The cross-mechanism convergence
// property lives in tests/anti_entropy_convergence_test.cpp.
#include "sync/anti_entropy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/dvv_kernel.hpp"
#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "sim/sim_store.hpp"
#include "sync/key_digest.hpp"
#include "sync/merkle.hpp"

namespace {

using dvv::core::DvvSiblings;
using dvv::core::VersionVector;
using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::sync::Digest;
using dvv::sync::DigestIndex;
using dvv::sync::MerkleConfig;
using dvv::sync::MerkleTree;
using dvv::sync::SyncStats;

// ---- key digests -----------------------------------------------------------

TEST(KeyDigest, EqualStatesEqualDigests) {
  DvvSiblings<std::string> a;
  DvvSiblings<std::string> b;
  a.update(0, VersionVector{}, "v");
  b.update(0, VersionVector{}, "v");
  EXPECT_EQ(dvv::sync::state_digest(a), dvv::sync::state_digest(b));
}

TEST(KeyDigest, DifferentValueDifferentDigest) {
  DvvSiblings<std::string> a;
  DvvSiblings<std::string> b;
  a.update(0, VersionVector{}, "v1");
  b.update(0, VersionVector{}, "v2");
  EXPECT_NE(dvv::sync::state_digest(a), dvv::sync::state_digest(b));
}

TEST(KeyDigest, EmptyStateIsNotMissing) {
  const DvvSiblings<std::string> empty;
  EXPECT_NE(dvv::sync::state_digest(empty), dvv::sync::kMissing);
}

TEST(KeyDigest, HashBytesDeterministicAndSpread) {
  EXPECT_EQ(dvv::sync::hash_string("abc"), dvv::sync::hash_string("abc"));
  EXPECT_NE(dvv::sync::hash_string("abc"), dvv::sync::hash_string("abd"));
  EXPECT_NE(dvv::sync::hash_string(""), dvv::sync::hash_string("a"));
}

// ---- Merkle tree -----------------------------------------------------------

TEST(MerkleTree, EmptyTreesAgree) {
  MerkleTree a;
  MerkleTree b;
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.root(), 0u);
  EXPECT_EQ(a.leaf_count(), 16u);  // default 4^2
}

TEST(MerkleTree, InsertionOrderIrrelevant) {
  MerkleTree a;
  MerkleTree b;
  for (int i = 0; i < 50; ++i) a.set("k" + std::to_string(i), 100u + i);
  for (int i = 49; i >= 0; --i) b.set("k" + std::to_string(i), 100u + i);
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.key_count(), 50u);
}

TEST(MerkleTree, SetThenEraseRestoresEmptyRoot) {
  MerkleTree t;
  t.set("k", 7);
  EXPECT_NE(t.root(), 0u);
  EXPECT_EQ(t.digest_of("k"), 7u);
  t.erase("k");
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.key_count(), 0u);
  EXPECT_EQ(t.digest_of("k"), dvv::sync::kMissing);
}

TEST(MerkleTree, UpdateChangesRoot) {
  MerkleTree t;
  t.set("k", 1);
  const Digest before = t.root();
  t.set("k", 2);
  EXPECT_NE(t.root(), before);
  t.set("k", 1);
  EXPECT_EQ(t.root(), before);  // content-only hashing: state restored
}

TEST(MerkleTree, CustomGeometry) {
  MerkleTree t(MerkleConfig{4, 3});
  EXPECT_EQ(t.fanout(), 4u);
  EXPECT_EQ(t.levels(), 3u);
  EXPECT_EQ(t.leaf_count(), 64u);
  t.set("hello", 42);
  EXPECT_NE(t.root(), 0u);
}

// ---- tree walk -------------------------------------------------------------

TEST(DiffLeaves, EqualTreesOneRoundTwoHashes) {
  MerkleTree a;
  MerkleTree b;
  for (int i = 0; i < 20; ++i) {
    a.set("k" + std::to_string(i), i);
    b.set("k" + std::to_string(i), i);
  }
  SyncStats stats;
  EXPECT_TRUE(dvv::sync::diff_leaves(a, b, stats).empty());
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.nodes_exchanged, 2u);
  EXPECT_GT(stats.wire_bytes, 0u);
}

TEST(DiffLeaves, SingleDifferingKeyFindsItsBucket) {
  MerkleTree a;
  MerkleTree b;
  for (int i = 0; i < 100; ++i) {
    a.set("k" + std::to_string(i), i);
    b.set("k" + std::to_string(i), i);
  }
  b.set("k42", 9999);
  SyncStats stats;
  const auto leaves = dvv::sync::diff_leaves(a, b, stats);
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0], a.bucket_of("k42"));
  // Root round plus one round per level.
  EXPECT_EQ(stats.rounds, 1u + a.levels());
  // Far fewer hashes than a full tree exchange.
  EXPECT_LT(stats.nodes_exchanged, 2 * (1 + a.fanout() * (1 + a.fanout())));
}

TEST(DiffLeaves, DisjointKeySpacesDiffer) {
  MerkleTree a;
  MerkleTree b;
  a.set("only-at-a", 1);
  b.set("only-at-b", 2);
  SyncStats stats;
  const auto leaves = dvv::sync::diff_leaves(a, b, stats);
  EXPECT_GE(leaves.size(), 1u);
}

// ---- DigestIndex -----------------------------------------------------------

TEST(DigestIndex, RefreshFoldsDirtyKeys) {
  DigestIndex index(2, MerkleConfig{});
  index.set_partitioner([](const std::string&) {
    return std::vector<dvv::core::ActorId>{0, 1};
  });
  DvvSiblings<std::string> state;
  state.update(0, VersionVector{}, "v");

  index.on_key_touched(0, "k");
  EXPECT_EQ(index.dirty_count(0), 1u);
  const auto partition = index.partition_of("k");
  EXPECT_EQ(index.tree(0, partition).root(), 0u)
      << "lazy: tree untouched until refresh";

  index.refresh(0, [&](const std::string&) { return &state; });
  EXPECT_EQ(index.dirty_count(0), 0u);
  EXPECT_EQ(index.tree(0, partition).digest_of("k"),
            dvv::sync::state_digest(state));

  // Both replicas own the partition; replica 1 holds nothing yet.
  ASSERT_EQ(index.shared_partitions(0, 1).size(), 1u);
  EXPECT_EQ(index.tree(1, partition).root(), 0u);

  // A deletion (find returns null) erases the leaf entry.
  index.on_key_touched(0, "k");
  index.refresh(0, [](const std::string&) {
    return static_cast<const DvvSiblings<std::string>*>(nullptr);
  });
  EXPECT_EQ(index.tree(0, partition).root(), 0u);
}

TEST(DigestIndex, DuplicateTouchesCollapse) {
  DigestIndex index(1, MerkleConfig{});
  for (int i = 0; i < 10; ++i) index.on_key_touched(0, "hot");
  EXPECT_EQ(index.dirty_count(0), 1u);
}

// ---- cluster integration ---------------------------------------------------

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.servers = 5;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

TEST(ClusterDigestSync, PairSessionRepairsDivergedKey) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  alice.put_via(key, pref[0], "only-here", {});  // lands on pref[0] only

  const SyncStats stats = cluster.anti_entropy_digest_pair(pref[0], pref[1]);
  EXPECT_EQ(stats.keys_shipped, 1u);
  EXPECT_GE(stats.keys_compared, 1u);
  EXPECT_GT(stats.wire_bytes, 0u);
  EXPECT_GE(stats.rounds, 3u);  // root + descent + leaf + ship
  EXPECT_TRUE(cluster.get(key, pref[1]).found);

  // Converged pair: the next session exchanges partition roots (which
  // all agree) and never descends to key lists or state.
  const SyncStats again = cluster.anti_entropy_digest_pair(pref[0], pref[1]);
  EXPECT_EQ(again.keys_shipped, 0u);
  EXPECT_EQ(again.keys_compared, 0u);
  EXPECT_LT(again.wire_bytes, stats.wire_bytes);
}

TEST(ClusterDigestSync, FullDigestPassMatchesLegacyConvergence) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);
  const auto pref = cluster.preference_list("k");
  alice.put_via("k", pref[0], "at-0", {});
  bob.put_via("k", pref[1], "at-1", {});

  const auto report = cluster.anti_entropy_digest();
  EXPECT_GT(report.stats.keys_shipped, 0u);
  EXPECT_GE(report.sweeps, 2u);  // repair sweep + clean verification sweep
  for (const ReplicaId r : pref) {
    EXPECT_EQ(cluster.get("k", r).values.size(), 2u) << "both siblings at " << r;
  }
  // Fixed point: another full pass ships nothing.
  EXPECT_EQ(cluster.anti_entropy_digest().stats.keys_shipped, 0u);
}

TEST(ClusterDigestSync, OwnershipFilterNeverShipsToNonOwners) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  // Find a server outside the preference list and plant the key there.
  ReplicaId outsider = 0;
  for (ReplicaId r = 0; r < 5; ++r) {
    if (std::find(pref.begin(), pref.end(), r) == pref.end()) outsider = r;
  }
  DvvMechanism mech;
  cluster.replica(outsider).put(mech, key, outsider, dvv::kv::client_actor(9), {},
                                "stray");

  const SyncStats stats = cluster.anti_entropy_digest_pair(outsider, pref[0]);
  // The stray key's partition is owned by pref members only, so the
  // outsider's copy is never even compared, let alone shipped.
  EXPECT_EQ(stats.keys_compared, 0u);
  EXPECT_EQ(stats.keys_shipped, 0u) << "non-owner keys must not spread";
  EXPECT_FALSE(cluster.get(key, pref[0]).found);
}

TEST(ClusterDigestSync, DeadEndpointIsNoOp) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const auto pref = cluster.preference_list("k");
  alice.put_via("k", pref[0], "v", {});
  cluster.replica(pref[1]).set_alive(false);
  const SyncStats stats = cluster.anti_entropy_digest_pair(pref[0], pref[1]);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.wire_bytes, 0u);
}

TEST(ClusterDigestSync, MerkleTreeViewTracksReplicaContents) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const auto pref = cluster.preference_list("k");
  EXPECT_EQ(cluster.merkle_tree_for(pref[0], "k").key_count(), 0u);
  alice.put("k", "v");  // fully replicated
  EXPECT_EQ(cluster.merkle_tree_for(pref[0], "k").key_count(), 1u);
  EXPECT_EQ(cluster.merkle_tree_for(pref[0], "k").root(),
            cluster.merkle_tree_for(pref[1], "k").root());
}

// The digest pre-check satellite: a converged cluster's legacy pass
// touches nothing, so `touched` now measures divergence.
TEST(ClusterDigestSync, LegacyAntiEntropySkipsConvergedKeys) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("a", "1");  // fully replicated: already converged
  const auto pref = cluster.preference_list("b");
  alice.put_via("b", pref[0], "2", {});  // diverged: coordinator only

  // Only the two replicas missing "b" get repaired: the coordinator
  // already holds the merged bytes and is not rewritten.
  const std::size_t touched = cluster.anti_entropy();
  EXPECT_EQ(touched, pref.size() - 1);
  EXPECT_EQ(cluster.anti_entropy(), 0u) << "converged cluster: zero touches";
}

// Regression (read-repair write-back satellite): duplicate replication
// deliveries and repair write-backs of byte-identical state must not
// dirty the Merkle trees or generate anti-entropy traffic.  The skip is
// byte-exact inside Replica (merge_key / adopt), so a converged cluster
// stays wire-silent no matter how often state is re-delivered.
TEST(ClusterDigestSync, ConvergedRedeliveryDoesNotDirtyTreesOrShipRepairs) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const Key key = "k";
  alice.put(key, "v");  // fully replicated: converged
  const auto pref = cluster.preference_list(key);

  cluster.anti_entropy_digest();  // absorb the initial dirty set
  const auto clean = cluster.anti_entropy_digest().stats;
  EXPECT_EQ(clean.keys_shipped, 0u);

  // Duplicate deliveries: the exact bytes every replica already holds.
  const auto& mech = cluster.mechanism();
  const auto* fresh = cluster.replica(pref[0]).find(key);
  ASSERT_NE(fresh, nullptr);
  for (int i = 0; i < 3; ++i) {
    cluster.replica(pref[1]).merge_key(mech, key, *fresh);
    cluster.replica(pref[2]).merge_key(mech, key, *fresh);
  }
  for (const ReplicaId r : pref) {
    EXPECT_EQ(cluster.aae_dirty_count(r), 0u)
        << "identical redelivery dirtied the tree at " << r;
  }

  // And the wire stays as quiet as a never-touched converged cluster.
  const auto after = cluster.anti_entropy_digest().stats;
  EXPECT_EQ(after.keys_shipped, 0u);
  EXPECT_EQ(after.wire_bytes, clean.wire_bytes)
      << "AAE wire bytes must not grow after no-op redeliveries";
  EXPECT_EQ(cluster.anti_entropy(), 0u);
}

// ---- simulator integration -------------------------------------------------

TEST(SimStoreAae, BackgroundRepairRunsAndWorkloadCompletes) {
  dvv::sim::SimStoreConfig cfg;
  cfg.clients = 8;
  cfg.keys = 32;
  cfg.ops_per_client = 40;
  cfg.seed = 7;
  cfg.aae_interval_ms = 5.0;
  const auto result = dvv::sim::simulate_store(cfg);
  EXPECT_EQ(result.cycles, cfg.clients * cfg.ops_per_client);
  EXPECT_GT(result.aae_sessions, 0u);
  EXPECT_GT(result.aae_stats.rounds, 0u);
  EXPECT_EQ(result.aae_session_bytes.count(), result.aae_sessions);
}

TEST(SimStoreAae, DisabledByDefault) {
  dvv::sim::SimStoreConfig cfg;
  cfg.clients = 4;
  cfg.keys = 16;
  cfg.ops_per_client = 10;
  cfg.seed = 7;
  const auto result = dvv::sim::simulate_store(cfg);
  EXPECT_EQ(result.aae_sessions, 0u);
  EXPECT_EQ(result.aae_stall_ms.count(), 0u);
}

TEST(SimStoreAae, DeterministicAcrossRuns) {
  dvv::sim::SimStoreConfig cfg;
  cfg.clients = 6;
  cfg.keys = 24;
  cfg.ops_per_client = 25;
  cfg.seed = 99;
  cfg.aae_interval_ms = 3.0;
  const auto r1 = dvv::sim::simulate_store(cfg);
  const auto r2 = dvv::sim::simulate_store(cfg);
  EXPECT_EQ(r1.aae_sessions, r2.aae_sessions);
  EXPECT_EQ(r1.aae_stats.wire_bytes, r2.aae_stats.wire_bytes);
  EXPECT_DOUBLE_EQ(r1.sim_duration_ms, r2.sim_duration_ms);
}

}  // namespace
