// Integration tests for the replicated store: Replica + Cluster +
// ClientSession over the DVV mechanism (and cross-mechanism smoke
// coverage via typed tests).  Exercises routing, replication fan-out,
// divergence + anti-entropy convergence, read-your-writes sessions and
// sibling lifecycle end to end.
#include "kv/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "kv/client.hpp"
#include "kv/mechanism.hpp"

namespace {

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::DvvSetMechanism;
using dvv::kv::HistoryMechanism;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::kv::ServerVvMechanism;

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.servers = 5;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

TEST(Cluster, GetOnMissingKeyNotFound) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  const auto r = cluster.get("nope", 0);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.values.empty());
}

TEST(Cluster, PutThenGetFromEveryPreferenceReplica) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);

  alice.put("k", "hello");
  for (const ReplicaId r : cluster.preference_list("k")) {
    const auto got = cluster.get("k", r);
    ASSERT_TRUE(got.found) << "replica " << r;
    ASSERT_EQ(got.values.size(), 1u);
    EXPECT_EQ(got.values[0], "hello");
  }
}

TEST(Cluster, PutDoesNotLandOutsidePreferenceList) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("k", "v");
  const auto pref = cluster.preference_list("k");
  for (ReplicaId r = 0; r < 5; ++r) {
    const bool in_pref = std::find(pref.begin(), pref.end(), r) != pref.end();
    EXPECT_EQ(cluster.get("k", r).found, in_pref) << "replica " << r;
  }
}

TEST(Cluster, ReadModifyWriteReplacesValue) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("k", "v1");
  alice.rmw("k", [](const std::vector<std::string>& vs) {
    EXPECT_EQ(vs.size(), 1u);
    return vs[0] + "+v2";
  });
  const auto got = cluster.get("k", cluster.default_coordinator("k").value());
  ASSERT_EQ(got.values.size(), 1u);
  EXPECT_EQ(got.values[0], "v1+v2");
}

TEST(Cluster, RacingBlindWritesCreateSiblings) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);

  alice.put("k", "from-alice");
  bob.put("k", "from-bob");  // bob never read: blind write

  const auto got = cluster.get("k", cluster.default_coordinator("k").value());
  ASSERT_EQ(got.values.size(), 2u);
  const std::set<std::string> vals(got.values.begin(), got.values.end());
  EXPECT_TRUE(vals.contains("from-alice"));
  EXPECT_TRUE(vals.contains("from-bob"));
}

TEST(Cluster, ReadingResolvesSiblingsOnNextWrite) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);

  alice.put("k", "a");
  bob.put("k", "b");
  // Carol reads both siblings, merges, writes back.
  ClientSession<DvvMechanism> carol(dvv::kv::client_actor(2), cluster);
  carol.rmw("k", [](const std::vector<std::string>& vs) {
    EXPECT_EQ(vs.size(), 2u);
    return std::string("merged");
  });
  const auto got = cluster.get("k", cluster.default_coordinator("k").value());
  ASSERT_EQ(got.values.size(), 1u);
  EXPECT_EQ(got.values[0], "merged");
}

TEST(Cluster, PartialReplicationDivergesThenAntiEntropyConverges) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);

  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  // Write lands only on the coordinator (empty replicate_to).
  alice.put_via(key, pref[0], "only-here", {});
  EXPECT_TRUE(cluster.get(key, pref[0]).found);
  EXPECT_FALSE(cluster.get(key, pref[1]).found);

  cluster.anti_entropy();
  for (const ReplicaId r : pref) {
    const auto got = cluster.get(key, r);
    ASSERT_TRUE(got.found);
    EXPECT_EQ(got.values[0], "only-here");
  }
}

TEST(Cluster, AntiEntropyConvergesDivergentSiblings) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);

  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  // Two writes land on two different replicas only: divergence.
  alice.put_via(key, pref[0], "at-0", {});
  bob.put_via(key, pref[1], "at-1", {});

  cluster.anti_entropy();
  for (const ReplicaId r : pref) {
    const auto got = cluster.get(key, r);
    ASSERT_TRUE(got.found);
    EXPECT_EQ(got.values.size(), 2u) << "both siblings everywhere";
  }
  // Idempotent: a second round changes nothing.
  const auto before = cluster.footprint();
  cluster.anti_entropy();
  const auto after = cluster.footprint();
  EXPECT_EQ(before.siblings, after.siblings);
  EXPECT_EQ(before.metadata_bytes, after.metadata_bytes);
}

TEST(Cluster, QuorumReadMergesDivergentReplicas) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);

  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  alice.put_via(key, pref[0], "at-0", {});
  bob.put_via(key, pref[1], "at-1", {});

  // A single-replica read sees one value; a quorum read sees both.
  EXPECT_EQ(cluster.get(key, pref[0]).values.size(), 1u);
  const auto merged = cluster.get_quorum(key, 2);
  ASSERT_TRUE(merged.found);
  EXPECT_EQ(merged.values.size(), 2u);
}

TEST(Cluster, DeadCoordinatorFailsOver) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  const Key key = "k";
  const auto pref = cluster.preference_list(key);
  cluster.replica(pref[0]).set_alive(false);
  EXPECT_EQ(cluster.default_coordinator(key), pref[1]);

  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put(key, "survives");
  EXPECT_TRUE(cluster.get(key, pref[1]).found);
  EXPECT_FALSE(cluster.get(key, pref[0]).found) << "dead replica missed it";

  // Recovery + anti-entropy repairs the dead replica.
  cluster.replica(pref[0]).set_alive(true);
  cluster.anti_entropy();
  EXPECT_TRUE(cluster.get(key, pref[0]).found);
}

// Regression: a fully-down preference list is an ERROR REPLY, not a
// process abort — default_coordinator reports nullopt and get/put/
// get_quorum surface `unavailable`.
TEST(Cluster, WholePreferenceListDownIsUnavailableNotFatal) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const Key key = "k";
  alice.put(key, "before-the-outage");

  const auto pref = cluster.preference_list(key);
  for (const ReplicaId r : pref) cluster.replica(r).set_alive(false);

  EXPECT_EQ(cluster.default_coordinator(key), std::nullopt);

  const auto got = alice.get(key);
  EXPECT_TRUE(got.unavailable);
  EXPECT_FALSE(got.found);

  const auto receipt = alice.put(key, "during-the-outage");
  EXPECT_TRUE(receipt.unavailable);
  EXPECT_EQ(receipt.replicated_to, 0u);

  const auto quorum = cluster.get_quorum(key, 2);
  EXPECT_TRUE(quorum.unavailable);

  // An explicitly-routed GET to a dead replica is unavailable too, and
  // must not clobber the session's remembered context (which would turn
  // the next put into a blind write).
  const auto routed = alice.get(key, pref[0]);
  EXPECT_TRUE(routed.unavailable);

  // Back up: the rejected write never happened, the old value is intact.
  for (const ReplicaId r : pref) cluster.replica(r).set_alive(true);
  EXPECT_EQ(alice.get(key).values, std::vector<std::string>{"before-the-outage"});
  EXPECT_FALSE(alice.put(key, "after").unavailable);
}

// Regression: an R-quorum read that could not actually reach R alive
// replicas used to report plain success (only asked == 0 was flagged).
// It must say how many replicas answered and mark itself degraded.
TEST(Cluster, QuorumReadBelowQuorumReportsDegraded) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const Key key = "k";
  alice.put(key, "v");
  const auto pref = cluster.preference_list(key);

  // Full quorum: R replies, not degraded.
  const auto full = cluster.get_quorum(key, 3);
  EXPECT_TRUE(full.found);
  EXPECT_FALSE(full.degraded);
  EXPECT_FALSE(full.unavailable);
  EXPECT_EQ(full.replies, 3u);

  // Two of three preference members down: a quorum-3 read gets one
  // reply — it still returns data but must admit the quorum failed.
  cluster.replica(pref[1]).set_alive(false);
  cluster.replica(pref[2]).set_alive(false);
  const auto degraded = cluster.get_quorum(key, 3);
  EXPECT_TRUE(degraded.found);
  EXPECT_TRUE(degraded.degraded) << "1 < 3 replies must be flagged";
  EXPECT_FALSE(degraded.unavailable);
  EXPECT_EQ(degraded.replies, 1u);

  // All down: unavailable AND degraded, zero replies.
  cluster.replica(pref[0]).set_alive(false);
  const auto dead = cluster.get_quorum(key, 3);
  EXPECT_TRUE(dead.unavailable);
  EXPECT_TRUE(dead.degraded);
  EXPECT_EQ(dead.replies, 0u);
  EXPECT_FALSE(dead.found);
}

// Regression: the plain put() receipt used to report only how many
// fan-out messages went out — a put whose preference-list targets were
// partly dead looked exactly like a fully-replicated one.  It must
// report the intended width and flag the shortfall (parallel to the
// get_quorum replies/degraded fix).
TEST(Cluster, PlainPutBelowFullFanoutReportsDegraded) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const Key key = "k";
  const auto pref = cluster.preference_list(key);

  // Everybody alive: full fan-out, not degraded, every target acked.
  const auto full = alice.put(key, "v1");
  EXPECT_EQ(full.targets, 2u);
  EXPECT_EQ(full.replicated_to, 2u);
  EXPECT_FALSE(full.degraded);
  EXPECT_FALSE(full.unavailable);
  EXPECT_GE(full.acks(), 1u);
  EXPECT_EQ(full.acked_by.front(), full.coordinator)
      << "the coordinator's local apply is the first ack";

  // One preference member dead: the write went below its intended
  // replication and the receipt must say so, not masquerade as full.
  cluster.replica(pref[1]).set_alive(false);
  const auto partial = alice.put(key, "v2");
  EXPECT_EQ(partial.targets, 2u);
  EXPECT_EQ(partial.replicated_to, 1u);
  EXPECT_TRUE(partial.degraded) << "1 of 2 intended copies must be flagged";
  EXPECT_FALSE(partial.unavailable);

  // Two dead: only the coordinator holds the write.
  cluster.replica(pref[2]).set_alive(false);
  const auto lone = alice.put(key, "v3");
  EXPECT_EQ(lone.targets, 2u);
  EXPECT_EQ(lone.replicated_to, 0u);
  EXPECT_TRUE(lone.degraded);
  EXPECT_FALSE(lone.unavailable) << "degraded is not unavailable";
}

TEST(Cluster, FootprintAggregatesAcrossReplicas) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("a", "1");
  alice.put("b", "2");
  const auto fp = cluster.footprint();
  // Each key is stored on replication=3 replicas.
  EXPECT_EQ(fp.keys, 6u);
  EXPECT_EQ(fp.siblings, 6u);
  EXPECT_GT(fp.metadata_bytes, 0u);
  EXPECT_GT(fp.total_bytes, fp.metadata_bytes);
}

TEST(Cluster, SessionContextIsPerKey) {
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  alice.put("k1", "a");
  alice.put("k2", "b");
  EXPECT_TRUE(alice.context_for("k1").empty()) << "no GET yet, no context";
  alice.get("k1");
  EXPECT_FALSE(alice.context_for("k1").empty());
  EXPECT_TRUE(alice.context_for("k2").empty());
  alice.forget("k1");
  EXPECT_TRUE(alice.context_for("k1").empty());
}

// The same end-to-end flow must work for every mechanism; typed tests
// keep the matrix in one place.
template <typename M>
class ClusterMechanismTest : public ::testing::Test {};

using Mechanisms = ::testing::Types<DvvMechanism, DvvSetMechanism,
                                    dvv::kv::ClientVvMechanism, ServerVvMechanism,
                                    HistoryMechanism>;
TYPED_TEST_SUITE(ClusterMechanismTest, Mechanisms);

TYPED_TEST(ClusterMechanismTest, PutGetRmwLifecycle) {
  Cluster<TypeParam> cluster(small_config(), {});
  ClientSession<TypeParam> alice(dvv::kv::client_actor(0), cluster);

  alice.put("k", "v1");
  auto got = alice.get("k");
  ASSERT_TRUE(got.found);
  ASSERT_EQ(got.values.size(), 1u);
  EXPECT_EQ(got.values[0], "v1");

  alice.put("k", "v2");  // context from the get: overwrite
  got = alice.get("k");
  ASSERT_EQ(got.values.size(), 1u);
  EXPECT_EQ(got.values[0], "v2");
}

TYPED_TEST(ClusterMechanismTest, AntiEntropyConvergesAllReplicas) {
  Cluster<TypeParam> cluster(small_config(), {});
  ClientSession<TypeParam> alice(dvv::kv::client_actor(0), cluster);
  const auto pref = cluster.preference_list("k");
  alice.put_via("k", pref[0], "v", {});
  cluster.anti_entropy();
  for (const ReplicaId r : pref) {
    EXPECT_TRUE(cluster.get("k", r).found);
  }
}

TEST(Cluster, RmwOnUnavailableReadDoesNotWrite) {
  // Regression: rmw used to proceed to PUT f({}) with the stale
  // remembered context when its GET came back unavailable — a blind
  // overwrite conditioned on a read that never happened.
  Cluster<DvvMechanism> cluster(small_config(), {});
  ClientSession<DvvMechanism> session(dvv::kv::client_actor(0), cluster);
  const Key key = "cart";
  session.put(key, "v1");
  session.get(key);

  for (const ReplicaId r : cluster.preference_list(key)) {
    cluster.replica(r).set_alive(false);
  }
  bool modifier_ran = false;
  const auto receipt = session.rmw(key, [&](const std::vector<std::string>&) {
    modifier_ran = true;
    return std::string("clobber");
  });
  EXPECT_TRUE(receipt.unavailable);
  EXPECT_EQ(receipt.outcome, dvv::kv::CoordOutcome::kUnavailable);
  EXPECT_FALSE(modifier_ran) << "an unavailable read must not feed f({})";

  for (const ReplicaId r : cluster.preference_list(key)) {
    cluster.replica(r).set_alive(true);
  }
  const auto after = session.get(key);
  ASSERT_TRUE(after.found);
  EXPECT_EQ(after.values, std::vector<std::string>{"v1"})
      << "nothing may have been written during the outage";
  // The remembered context survived too: the next rmw overwrites
  // normally instead of forking a sibling.
  session.rmw(key, [](const std::vector<std::string>&) {
    return std::string("v2");
  });
  EXPECT_EQ(session.get(key).values, std::vector<std::string>{"v2"});
}

TYPED_TEST(ClusterMechanismTest, RacingWritesKeptByAllSoundMechanisms) {
  // Every mechanism keeps the conflict visible at the coordinating
  // server itself (even server-VV "detects" it; it only mis-tags it).
  Cluster<TypeParam> cluster(small_config(), {});
  ClientSession<TypeParam> a(dvv::kv::client_actor(0), cluster);
  ClientSession<TypeParam> b(dvv::kv::client_actor(1), cluster);
  a.put("k", "x");
  b.put("k", "y");
  const auto got = cluster.get("k", cluster.default_coordinator("k").value());
  EXPECT_EQ(got.values.size(), 2u);
}

}  // namespace
