// Verbatim replay of the paper's Figure 1: a system with two servers
// (A, B) and a single object, three causality mechanisms side by side.
//
// The event sequence (reconstructed from panels a/b/c and §2's prose):
//   1. Peter writes v1 through A with an empty context.
//   2. Peter and Mary both read v1 from A.
//   3. Peter writes v2 through A with his (fresh) context: v2 replaces v1.
//   4. A syncs to B; a third client reads v2 at B.
//   5. Mary writes v3 through A with her now-STALE context: v3 must
//      stay concurrent with v2 ({A1,A3} || {A1,A2}).
//   6. The B-side client writes v4 through B with context {A1,A2}
//      ({A1,A2,B1}, concurrent with v3).
//   7. Servers sync; a reader at A sees both remaining siblings and
//      writes v5 through A, reconciling everything: {A1,A2,A3,A4}.
//
// Every literal clock the paper prints is asserted: causal histories in
// Fig. 1a, the problematic [2,0] < [3,0] of Fig. 1b, and the DVVs of
// Fig. 1c including (A,3)[1,0] || (A,2)[1,0].
#include <gtest/gtest.h>

#include <string>

#include "core/causal_history.hpp"
#include "core/causality.hpp"
#include "core/dvv_kernel.hpp"
#include "core/history_kernel.hpp"
#include "core/vv_kernels.hpp"

namespace {

using dvv::core::CausalHistory;
using dvv::core::Dot;
using dvv::core::DvvSiblings;
using dvv::core::HistorySiblings;
using dvv::core::Ordering;
using dvv::core::ServerVvSiblings;
using dvv::core::VersionVector;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;

std::string name(dvv::core::ActorId id) {
  return std::string(1, static_cast<char>('A' + id));
}

// ---------------------------------------------------------- Fig. 1a (truth)

TEST(Fig1, PanelA_CausalHistories) {
  HistorySiblings<std::string> server_a, server_b;

  // 1. Peter's initial write through A.
  server_a.update(kA, CausalHistory{}, "v1");
  ASSERT_EQ(server_a.sibling_count(), 1u);
  EXPECT_EQ(server_a.versions()[0].history.to_string(name), "{A1}");

  // 2. Peter and Mary read v1.
  const CausalHistory peter_ctx = server_a.context();
  const CausalHistory mary_ctx = server_a.context();

  // 3. Peter writes v2: replaces v1.
  server_a.update(kA, peter_ctx, "v2");
  ASSERT_EQ(server_a.sibling_count(), 1u);
  EXPECT_EQ(server_a.versions()[0].history.to_string(name), "{A1,A2}");

  // 4. A -> B sync; a client reads v2 at B.
  server_b.sync(server_a);
  const CausalHistory b_client_ctx = server_b.context();
  EXPECT_EQ(b_client_ctx.to_string(name), "{A1,A2}");

  // 5. Mary writes v3 with her stale context: true siblings at A.
  server_a.update(kA, mary_ctx, "v3");
  ASSERT_EQ(server_a.sibling_count(), 2u);
  EXPECT_EQ(server_a.versions()[0].history.to_string(name), "{A1,A2}");
  EXPECT_EQ(server_a.versions()[1].history.to_string(name), "{A1,A3}");
  EXPECT_EQ(server_a.versions()[1].history.compare(server_a.versions()[0].history),
            Ordering::kConcurrent)
      << "{A1,A3} || {A1,A2}, as printed in the figure";

  // 6. The B client writes v4 through B.
  server_b.update(kB, b_client_ctx, "v4");
  ASSERT_EQ(server_b.sibling_count(), 1u);
  EXPECT_EQ(server_b.versions()[0].history.to_string(name), "{A1,A2,B1}");

  // 7. Sync both ways: B holds {A1,A3} || {A1,A2,B1}.
  server_b.sync(server_a);
  server_a.sync(server_b);
  ASSERT_EQ(server_b.sibling_count(), 2u);
  EXPECT_EQ(server_b.versions()[0].history.compare(server_b.versions()[1].history),
            Ordering::kConcurrent)
      << "{A1,A3} || {A1,A2,B1}";

  // A reader at A reconciles everything through A.
  // (A holds {A1,A2,B1} and {A1,A3} after the bidirectional sync.)
  const CausalHistory full_ctx = server_a.context();
  server_a.update(kA, full_ctx, "v5");
  ASSERT_EQ(server_a.sibling_count(), 1u);
  // Context = {A1,A2,A3,B1}; new event A4.  The figure's final history
  // {A1,A2,A3,A4} corresponds to reconciling at A *before* B1 arrived;
  // we assert the dominance property it illustrates plus the event name.
  EXPECT_TRUE(server_a.versions()[0].history.contains(Dot{kA, 4}));
  EXPECT_TRUE(CausalHistory({Dot{kA, 1}, Dot{kA, 2}, Dot{kA, 3}})
                  .subset_of(server_a.versions()[0].history));
}

// The figure's exact final history {A1,A2,A3,A4} (reconciliation at A
// from A's own two siblings, before B's version arrives).
TEST(Fig1, PanelA_FinalReconciliationAtA) {
  HistorySiblings<std::string> server_a;
  server_a.update(kA, CausalHistory{}, "v1");
  const auto stale = server_a.context();
  server_a.update(kA, server_a.context(), "v2");
  server_a.update(kA, stale, "v3");  // {A1,A3} || {A1,A2}
  ASSERT_EQ(server_a.sibling_count(), 2u);

  const auto ctx = server_a.context();  // {A1,A2,A3}
  server_a.update(kA, ctx, "v5");
  ASSERT_EQ(server_a.sibling_count(), 1u);
  EXPECT_EQ(server_a.versions()[0].history.to_string(name), "{A1,A2,A3,A4}");
}

// ----------------------------------------------------- Fig. 1b (VV, broken)

TEST(Fig1, PanelB_ServerVvAnomaly) {
  ServerVvSiblings<std::string> server_a, server_b;
  const std::vector<dvv::core::ActorId> order{kA, kB};

  server_a.update(kA, VersionVector{}, "v1");
  EXPECT_EQ(server_a.versions()[0].clock.to_string_dense(order), "[1,0]");

  const VersionVector peter_ctx = server_a.context();
  const VersionVector mary_ctx = server_a.context();

  server_a.update(kA, peter_ctx, "v2");
  EXPECT_EQ(server_a.versions()[0].clock.to_string_dense(order), "[2,0]");

  server_b.sync(server_a);  // B replicates [2,0]
  ASSERT_EQ(server_b.sibling_count(), 1u);

  // Mary's stale write: the server detects the conflict (her context
  // [1,0] differs from the stored [2,0]) and keeps both versions — but
  // must tag hers with [3,0], which falsely dominates [2,0].
  server_a.update(kA, mary_ctx, "v3");
  ASSERT_EQ(server_a.sibling_count(), 2u);
  EXPECT_EQ(server_a.versions()[0].clock.to_string_dense(order), "[2,0]");
  EXPECT_EQ(server_a.versions()[1].clock.to_string_dense(order), "[3,0]");
  EXPECT_EQ(server_a.versions()[0].clock.compare(server_a.versions()[1].clock),
            Ordering::kBefore)
      << "the paper's problematic case: [2,0] < [3,0]";

  // "...as it would happen in server B, after receiving the version
  // tagged with VV [3,0]": B drops v2, losing Peter's write.
  server_b.sync(server_a);
  ASSERT_EQ(server_b.sibling_count(), 1u);
  EXPECT_EQ(server_b.versions()[0].value, "v3")
      << "v2 silently destroyed by false dominance";
}

// ------------------------------------------------------- Fig. 1c (DVV, fixed)

TEST(Fig1, PanelC_DottedVersionVectors) {
  DvvSiblings<std::string> server_a, server_b;
  const std::vector<dvv::core::ActorId> order{kA, kB};

  // 1. Peter's initial write: (A,1)[0,0].
  server_a.update(kA, VersionVector{}, "v1");
  EXPECT_EQ(server_a.versions()[0].clock.to_string_dense(order, name), "(A,1)[0,0]");

  const VersionVector peter_ctx = server_a.context();
  const VersionVector mary_ctx = server_a.context();

  // 3. Peter's second write: (A,2)[1,0].
  server_a.update(kA, peter_ctx, "v2");
  ASSERT_EQ(server_a.sibling_count(), 1u);
  EXPECT_EQ(server_a.versions()[0].clock.to_string_dense(order, name), "(A,2)[1,0]");

  // 4. Replicate to B; a client reads v2 there.
  server_b.sync(server_a);
  const VersionVector b_client_ctx = server_b.context();

  // 5. Mary's stale write: (A,3)[1,0], concurrent with (A,2)[1,0] —
  //    the paper's "(A,3)[1,0] || (A,2)[1,0]".
  server_a.update(kA, mary_ctx, "v3");
  ASSERT_EQ(server_a.sibling_count(), 2u);
  const auto& v2_clock = server_a.versions()[0].clock;
  const auto& v3_clock = server_a.versions()[1].clock;
  EXPECT_EQ(v3_clock.to_string_dense(order, name), "(A,3)[1,0]");
  EXPECT_EQ(v2_clock.to_string_dense(order, name), "(A,2)[1,0]");
  EXPECT_EQ(v3_clock.compare(v2_clock), Ordering::kConcurrent);

  // 6. The B client's write: (B,1)[2,0].
  server_b.update(kB, b_client_ctx, "v4");
  ASSERT_EQ(server_b.sibling_count(), 1u);
  EXPECT_EQ(server_b.versions()[0].clock.to_string_dense(order, name), "(B,1)[2,0]");

  // 7. Sync: B keeps v3 and v4 as true siblings; v2 is correctly gone
  //    (v4's past [2,0] contains dot (A,2)).
  server_b.sync(server_a);
  ASSERT_EQ(server_b.sibling_count(), 2u);
  std::multiset<std::string> values;
  for (const auto& v : server_b.versions()) values.insert(v.value);
  EXPECT_EQ(values, (std::multiset<std::string>{"v3", "v4"}));

  // Final reconciliation at A from A's own siblings: (A,4)[3,0].
  DvvSiblings<std::string> fresh_a;
  fresh_a.update(kA, VersionVector{}, "v1");
  const auto stale = fresh_a.context();
  fresh_a.update(kA, fresh_a.context(), "v2");
  fresh_a.update(kA, stale, "v3");
  const auto ctx = fresh_a.context();  // [3,0]
  fresh_a.update(kA, ctx, "v5");
  ASSERT_EQ(fresh_a.sibling_count(), 1u);
  EXPECT_EQ(fresh_a.versions()[0].clock.to_string_dense(order, name), "(A,4)[3,0]");
}

// Cross-panel agreement: at every step of the scenario, the DVV world
// retains exactly the values the causal-history world retains, while
// the server-VV world diverges at the sync step.  (This is the E1-E3
// claim in one test.)
TEST(Fig1, PanelsAgreeExceptServerVv) {
  HistorySiblings<std::string> truth_a, truth_b;
  DvvSiblings<std::string> dvv_a, dvv_b;
  ServerVvSiblings<std::string> vv_a, vv_b;

  auto values_h = [](const HistorySiblings<std::string>& s) {
    std::multiset<std::string> out;
    for (const auto& v : s.versions()) out.insert(v.value);
    return out;
  };
  auto values_d = [](const DvvSiblings<std::string>& s) {
    std::multiset<std::string> out;
    for (const auto& v : s.versions()) out.insert(v.value);
    return out;
  };
  auto values_v = [](const ServerVvSiblings<std::string>& s) {
    std::multiset<std::string> out;
    for (const auto& v : s.versions()) out.insert(v.value);
    return out;
  };

  // Step 1-2.
  truth_a.update(kA, CausalHistory{}, "v1");
  dvv_a.update(kA, VersionVector{}, "v1");
  vv_a.update(kA, VersionVector{}, "v1");
  const auto h_stale = truth_a.context();
  const auto d_stale = dvv_a.context();
  const auto v_stale = vv_a.context();

  // Step 3.
  truth_a.update(kA, truth_a.context(), "v2");
  dvv_a.update(kA, dvv_a.context(), "v2");
  vv_a.update(kA, vv_a.context(), "v2");

  // Step 4.
  truth_b.sync(truth_a);
  dvv_b.sync(dvv_a);
  vv_b.sync(vv_a);

  // Step 5: the stale write.
  truth_a.update(kA, h_stale, "v3");
  dvv_a.update(kA, d_stale, "v3");
  vv_a.update(kA, v_stale, "v3");
  EXPECT_EQ(values_d(dvv_a), values_h(truth_a));
  EXPECT_EQ(values_v(vv_a), values_h(truth_a))
      << "server A itself still holds both (conflict was detected)";

  // Step 7: the sync that kills the VV world.
  truth_b.sync(truth_a);
  dvv_b.sync(dvv_a);
  vv_b.sync(vv_a);
  EXPECT_EQ(values_d(dvv_b), values_h(truth_b)) << "DVV == ground truth";
  EXPECT_NE(values_v(vv_b), values_h(truth_b)) << "server-VV lost a sibling";
}

}  // namespace
