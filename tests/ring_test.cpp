// Tests for the consistent-hashing ring: preference-list shape,
// determinism, balance, and the replication-degree bound it hands the
// causality layer.
#include "kv/ring.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace {

using dvv::kv::Ring;

TEST(Ring, PreferenceListHasExactlyRDistinctServers) {
  const Ring ring(8, 3);
  for (int k = 0; k < 200; ++k) {
    const auto pref = ring.preference_list("key-" + std::to_string(k));
    ASSERT_EQ(pref.size(), 3u);
    const std::set<dvv::kv::ReplicaId> uniq(pref.begin(), pref.end());
    EXPECT_EQ(uniq.size(), 3u);
    for (const auto r : pref) EXPECT_LT(r, 8u);
  }
}

TEST(Ring, DeterministicAcrossInstances) {
  const Ring a(5, 3), b(5, 3);
  for (int k = 0; k < 100; ++k) {
    const auto key = "key-" + std::to_string(k);
    EXPECT_EQ(a.preference_list(key), b.preference_list(key));
  }
}

TEST(Ring, SingleServerDegenerateCase) {
  const Ring ring(1, 1);
  EXPECT_EQ(ring.preference_list("anything"),
            std::vector<dvv::kv::ReplicaId>{0});
}

TEST(Ring, ReplicationEqualsServersCoversAll) {
  const Ring ring(4, 4);
  const auto pref = ring.preference_list("k");
  const std::set<dvv::kv::ReplicaId> uniq(pref.begin(), pref.end());
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(Ring, CoordinatorLoadIsRoughlyBalanced) {
  const Ring ring(8, 3, 128);
  std::vector<int> coordinator_count(8, 0);
  constexpr int kKeys = 20'000;
  for (int k = 0; k < kKeys; ++k) {
    ++coordinator_count[ring.preference_list("key-" + std::to_string(k))[0]];
  }
  // Perfect balance would be 2500 per server; allow a generous band
  // (vnode hashing gives ~±20% at 128 vnodes).
  for (const int c : coordinator_count) {
    EXPECT_GT(c, kKeys / 8 / 2);
    EXPECT_LT(c, kKeys / 8 * 2);
  }
}

TEST(Ring, DifferentKeysSpreadAcrossServers) {
  const Ring ring(8, 3);
  std::set<dvv::kv::ReplicaId> coordinators;
  for (int k = 0; k < 100; ++k) {
    coordinators.insert(ring.preference_list("key-" + std::to_string(k))[0]);
  }
  EXPECT_EQ(coordinators.size(), 8u) << "100 keys should hit every server";
}

TEST(Ring, HashIsStableAndSpreads) {
  EXPECT_EQ(Ring::hash("abc"), Ring::hash("abc"));
  EXPECT_NE(Ring::hash("abc"), Ring::hash("abd"));
  // Sequential keys should not collide in the top bits (avalanche).
  std::set<std::uint64_t> tops;
  for (int i = 0; i < 1000; ++i) {
    tops.insert(Ring::hash("key-" + std::to_string(i)) >> 48);
  }
  EXPECT_GT(tops.size(), 900u);
}

TEST(Ring, AccessorsReportConfiguration) {
  const Ring ring(6, 2, 32);
  EXPECT_EQ(ring.servers(), 6u);
  EXPECT_EQ(ring.replication(), 2u);
}

}  // namespace
