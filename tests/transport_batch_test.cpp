// Batched-delivery equivalence proof for the message layer (src/net).
//
// Claim: SimTransport's per-tick batch coalescing (BatchMsg wire
// frames assembled at pump time) is REPRESENTATION-ONLY.  For every
// causality mechanism, a chaos run with batch_delivery on is
// byte-identical to its batch-off twin — same seeded faults, same
// workload — in every observable: per-put receipts, transport
// accounting (delivered is counted per sub-message), every replica's
// every key after the workload, and the digest anti-entropy fixed
// point.  The claim holds over the WAL durability backend too
// (chaos+wal), where every delivered merge also rides the log.
//
// Second half: the BatchMsg decode boundary.  A batch frame is wire
// format, not a trusted shortcut — truncated sub-frames, count
// overclaims and trailing bytes must all be rejected at delivery
// (counted, dropped, never an abort), exactly like any other hostile
// frame, while a well-formed injected batch delivers its sub-messages.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "net/message.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "store/backend.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::net::Envelope;
using dvv::net::Message;
using dvv::net::SimTransport;
using dvv::net::SimTransportConfig;
using dvv::util::Rng;

constexpr std::size_t kServers = 6;
constexpr std::size_t kKeys = 24;
constexpr std::size_t kClients = 5;
constexpr std::size_t kOps = 400;

ClusterConfig chaos_config(std::uint64_t seed, bool batch, bool wal) {
  ClusterConfig cfg;
  cfg.servers = kServers;
  cfg.replication = 3;
  cfg.vnodes = 32;
  cfg.storage.kind =
      wal ? dvv::store::BackendKind::kWal : dvv::store::BackendKind::kMem;
  cfg.transport.kind = dvv::net::TransportKind::kSim;
  cfg.transport.sim = SimTransportConfig{};
  cfg.transport.sim.seed = seed ^ 0xba7c4ULL;
  cfg.transport.sim.drop_probability = 0.10;
  cfg.transport.sim.duplicate_probability = 0.15;
  cfg.transport.sim.reorder_window = 4;
  cfg.transport.sim.auto_settle = false;  // real in-flight runs to coalesce
  cfg.transport.sim.batch_delivery = batch;
  return cfg;
}

/// Everything a put reports — compared batched vs unbatched per op.
using ReceiptRow = std::tuple<ReplicaId, std::size_t, std::size_t, std::size_t,
                              std::size_t, bool, std::size_t, std::size_t>;

/// The chaos workload from the transport chaos suite: coordinated RMW
/// puts with pumps, partitions, heals and background sync sessions
/// between the operations — all drawn from seeded streams, so the
/// batched and unbatched runs face the identical schedule.
template <typename M>
std::vector<ReceiptRow> run_workload(Cluster<M>& cluster, std::uint64_t seed) {
  Rng rng(seed);
  Rng net_rng(seed ^ 0x9e37ULL);
  using Context = typename M::Context;
  std::vector<ReceiptRow> receipts;

  for (std::size_t op = 0; op < kOps; ++op) {
    const bool do_partition = net_rng.chance(0.04);
    const bool do_heal = net_rng.chance(0.10);
    const bool do_pump = net_rng.chance(0.50);
    const bool do_sync = net_rng.chance(0.08);
    const auto sync_a = static_cast<ReplicaId>(net_rng.index(kServers));
    auto sync_b = static_cast<ReplicaId>(net_rng.index(kServers - 1));
    if (sync_b >= sync_a) ++sync_b;
    const auto groups = dvv::net::random_split<ReplicaId>(net_rng, kServers);

    if (do_partition && !cluster.transport().partitioned()) {
      cluster.partition(groups, "chaos");
    } else if (do_heal && cluster.transport().partitioned()) {
      cluster.heal();
    }
    if (do_pump) cluster.pump();
    if (do_sync) (void)cluster.request_sync(sync_a, sync_b);

    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const ReplicaId coordinator = cluster.preference_list(key)[0];
    const std::size_t client = rng.index(kClients);
    Context ctx{};
    if (rng.chance(0.7)) ctx = cluster.get(key, coordinator).context;
    const auto receipt =
        cluster.put(key, coordinator, dvv::kv::client_actor(client), ctx,
                    "w" + std::to_string(op), cluster.preference_list(key));
    receipts.emplace_back(receipt.coordinator, receipt.targets,
                          receipt.replicated_to, receipt.hinted,
                          receipt.unparked, receipt.degraded, receipt.acks(),
                          receipt.replication_bytes);
  }
  return receipts;
}

/// Quiesce: zero fault rates, heal, drain, digest repair.
template <typename M>
void quiesce(Cluster<M>& cluster) {
  auto* sim = dynamic_cast<SimTransport*>(&cluster.transport());
  ASSERT_NE(sim, nullptr);
  sim->set_fault_rates(0.0, 0.0, 0);
  cluster.heal();
  cluster.pump_all();
  cluster.anti_entropy_digest();
}

/// Byte-level snapshot of every replica's every key.
template <typename M>
std::map<std::pair<ReplicaId, Key>, std::string> full_state(
    Cluster<M>& cluster) {
  std::map<std::pair<ReplicaId, Key>, std::string> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      dvv::codec::Writer w;
      dvv::codec::encode(w, *cluster.replica(r).find(key));
      const auto* p = reinterpret_cast<const char*>(w.buffer().data());
      out.emplace(std::make_pair(r, key), std::string(p, w.size()));
    }
  }
  return out;
}

template <typename M>
void run_equivalence(bool wal) {
  for (const std::uint64_t seed : {11ULL, 20120716ULL}) {
    Cluster<M> batched(chaos_config(seed, /*batch=*/true, wal), {});
    Cluster<M> unbatched(chaos_config(seed, /*batch=*/false, wal), {});
    const auto batched_receipts = run_workload(batched, seed);
    const auto unbatched_receipts = run_workload(unbatched, seed);

    // Coalescing must actually have happened, and faults too.
    const auto& bs = batched.transport().stats();
    const auto& us = unbatched.transport().stats();
    ASSERT_GT(bs.dropped, 0u) << "seed " << seed;
    ASSERT_GT(bs.duplicated, 0u);

    // Receipt streams identical, op for op.
    ASSERT_EQ(batched_receipts, unbatched_receipts)
        << "batched receipts diverged (seed " << seed << ", wal=" << wal
        << ")";
    // Transport accounting identical: delivered counts per SUB-message,
    // so the batch representation leaves no numeric trace.
    EXPECT_EQ(bs.sent, us.sent);
    EXPECT_EQ(bs.delivered, us.delivered);
    EXPECT_EQ(bs.dropped, us.dropped);
    EXPECT_EQ(bs.duplicated, us.duplicated);
    EXPECT_EQ(bs.partition_dropped, us.partition_dropped);
    EXPECT_EQ(bs.wire_bytes, us.wire_bytes);

    // Mid-flight state (before any repair) already byte-identical.
    ASSERT_EQ(full_state(batched), full_state(unbatched))
        << "batched delivery changed replica state (seed " << seed
        << ", wal=" << wal << ")";

    // And the AAE fixed points coincide and are genuine fixed points.
    quiesce(batched);
    quiesce(unbatched);
    ASSERT_EQ(full_state(batched), full_state(unbatched))
        << "fixed points diverge (seed " << seed << ", wal=" << wal << ")";
    EXPECT_EQ(batched.anti_entropy_digest().stats.keys_shipped, 0u);
    EXPECT_EQ(unbatched.anti_entropy_digest().stats.keys_shipped, 0u);
  }
}

template <typename M>
class TransportBatchTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(TransportBatchTest, AllMechanisms);

TYPED_TEST(TransportBatchTest, BatchedChaosMatchesUnbatchedTwinByteForByte) {
  run_equivalence<TypeParam>(/*wal=*/false);
}

TYPED_TEST(TransportBatchTest, BatchedChaosWithWalMatchesUnbatchedTwin) {
  run_equivalence<TypeParam>(/*wal=*/true);
}

// ---- the BatchMsg decode boundary ------------------------------------------

std::string encoded_frame(const Message& msg) {
  std::string out;
  dvv::net::encode_into(msg, out);
  return out;
}

void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// A batch frame: tag, count, then `frames` each length-prefixed.
/// `count_override` lets a test overclaim; `truncate`/`trailing`
/// corrupt the tail.
std::string batch_frame(const std::vector<std::string>& frames,
                        std::uint64_t count_override, std::size_t truncate,
                        const std::string& trailing) {
  std::string out;
  append_varint(out, std::variant_size_v<Message> - 1);  // BatchMsg tag
  append_varint(out, count_override);
  for (const std::string& f : frames) {
    append_varint(out, f.size());
    out += f;
  }
  if (truncate > 0) out.resize(out.size() - truncate);
  out += trailing;
  return out;
}

Message sample_message() {
  dvv::net::ReplicateMsg msg;
  msg.key = "k";
  msg.state = "some-state-bytes";
  return msg;
}

TEST(TransportBatchDecode, MalformedBatchFramesAreRejectedRowByRow) {
  SimTransport transport{SimTransportConfig{}};
  std::size_t envelopes = 0;
  std::size_t sub_messages = 0;
  transport.set_sink([&](const Envelope& envelope) {
    ++envelopes;
    sub_messages += envelope.batch.empty() ? 1 : envelope.batch.size();
  });
  const std::string sub = encoded_frame(sample_message());

  // Row 1: truncated sub-frame — the length prefix promises more bytes
  // than the frame carries.
  transport.inject_raw(1, 2, batch_frame({sub}, 1, /*truncate=*/3, {}));
  // Row 2: count overclaim — header says 3, frame carries 2.
  transport.inject_raw(1, 2, batch_frame({sub, sub}, 3, 0, {}));
  // Row 3: trailing bytes after the last sub-frame.
  transport.inject_raw(1, 2, batch_frame({sub}, 1, 0, "junk"));
  // Row 4: an empty batch overclaiming one sub-message.
  transport.inject_raw(1, 2, batch_frame({}, 1, 0, {}));
  // Control: a WELL-FORMED injected batch delivers its sub-messages.
  transport.inject_raw(1, 2, batch_frame({sub, sub}, 2, 0, {}));

  for (int tick = 0; tick < 8; ++tick) (void)transport.pump();

  EXPECT_EQ(transport.stats().decode_rejected, 4u)
      << "every malformed batch frame must be rejected";
  EXPECT_EQ(envelopes, 1u) << "only the well-formed batch may deliver";
  EXPECT_EQ(sub_messages, 2u);
  EXPECT_EQ(transport.stats().delivered, 2u)
      << "delivered counts per sub-message";
}

TEST(TransportBatchDecode, NestedBatchFramesAreRejected) {
  // A batch whose sub-frame is itself a batch: the wire format forbids
  // recursion (one level of coalescing only), so the strict decode
  // must reject the composite.
  SimTransport transport{SimTransportConfig{}};
  std::size_t envelopes = 0;
  transport.set_sink([&](const Envelope&) { ++envelopes; });
  const std::string inner =
      batch_frame({encoded_frame(sample_message())}, 1, 0, {});
  transport.inject_raw(1, 2, batch_frame({inner}, 1, 0, {}));
  for (int tick = 0; tick < 4; ++tick) (void)transport.pump();
  EXPECT_EQ(transport.stats().decode_rejected, 1u);
  EXPECT_EQ(envelopes, 0u);
}

}  // namespace
