// Tests for the observability layer (src/obs): registry handle
// semantics, BucketHistogram bucket boundaries and quantiles, exporter
// goldens (Prometheus text + JSON snapshot), flight-recorder ring
// behavior, the env-knob parsers' loud-failure contract, and the
// assert-time flight dump (a death test that checks the JSON the
// crashing child leaves behind).
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace {

using dvv::obs::Counter;
using dvv::obs::FlightRecorder;
using dvv::obs::Gauge;
using dvv::obs::HistogramHandle;
using dvv::obs::Registry;
using dvv::util::BucketHistogram;

// ---- handles ---------------------------------------------------------------

TEST(Handles, DefaultConstructedHandlesAreInertAndSafe) {
  Counter c;
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(3.0);
  g.add(1.0);
  g.set_max(9.0);
  EXPECT_EQ(g.value(), 0.0);

  HistogramHandle h;
  h.record(42);
  EXPECT_EQ(h.histogram(), nullptr);
}

TEST(Handles, DisabledRegistryDropsBumpsButKeepsReads) {
  Registry reg(/*enabled=*/false);
  const Counter c = reg.counter("c");
  const Gauge g = reg.gauge("g");
  const HistogramHandle h = reg.histogram("h");

  c.inc(7);
  g.set(1.5);
  h.record(3);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_TRUE(h.histogram()->empty());

  reg.set_enabled(true);
  c.inc(7);
  g.set(1.5);
  h.record(3);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(g.value(), 1.5);
  EXPECT_EQ(h.histogram()->total(), 1u);
}

TEST(Handles, RegistrationIsIdempotentAndSharesTheCell) {
  Registry reg;
  const Counter a = reg.counter("same");
  const Counter b = reg.counter("same");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.counter_value("same"), 5u);
}

TEST(Handles, GaugeSetMaxIsAHighWatermark) {
  Registry reg;
  const Gauge g = reg.gauge("peak");
  g.set_max(3.0);
  g.set_max(1.0);  // lower: ignored
  EXPECT_EQ(g.value(), 3.0);
  g.set_max(8.0);
  EXPECT_EQ(g.value(), 8.0);
}

TEST(Registry, UnknownNamesReadAsZeroOrNull) {
  const Registry reg;
  EXPECT_EQ(reg.counter_value("never"), 0u);
  EXPECT_EQ(reg.gauge_value("never"), 0.0);
  EXPECT_EQ(reg.find_histogram("never"), nullptr);
}

TEST(Registry, ResetZeroesCellsButHandlesStayValid) {
  Registry reg;
  const Counter c = reg.counter("c");
  const HistogramHandle h = reg.histogram("h");
  c.inc(4);
  h.record(10);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(h.histogram()->empty());
  c.inc();
  EXPECT_EQ(reg.counter_value("c"), 1u) << "handle must survive reset";
}

// ---- BucketHistogram -------------------------------------------------------

TEST(BucketHistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 holds exactly the value 0; bucket i (i >= 1) holds
  // [2^(i-1), 2^i - 1] — i.e. values of bit width i.
  EXPECT_EQ(BucketHistogram::bucket_index(0), 0u);
  EXPECT_EQ(BucketHistogram::bucket_index(1), 1u);
  EXPECT_EQ(BucketHistogram::bucket_index(2), 2u);
  EXPECT_EQ(BucketHistogram::bucket_index(3), 2u);
  EXPECT_EQ(BucketHistogram::bucket_index(4), 3u);
  EXPECT_EQ(BucketHistogram::bucket_index(7), 3u);
  EXPECT_EQ(BucketHistogram::bucket_index(8), 4u);
  EXPECT_EQ(BucketHistogram::bucket_index(~0ULL), 64u);

  EXPECT_EQ(BucketHistogram::bucket_upper(0), 0u);
  EXPECT_EQ(BucketHistogram::bucket_upper(1), 1u);
  EXPECT_EQ(BucketHistogram::bucket_upper(2), 3u);
  EXPECT_EQ(BucketHistogram::bucket_upper(3), 7u);
  EXPECT_EQ(BucketHistogram::bucket_upper(64), ~0ULL);

  // Every bucket's upper bound maps back into that bucket.
  for (std::size_t i = 0; i < BucketHistogram::kBuckets; ++i) {
    EXPECT_EQ(BucketHistogram::bucket_index(BucketHistogram::bucket_upper(i)), i);
  }
}

TEST(BucketHistogramTest, EmptyQuantilesAreNaN) {
  const BucketHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.p99()));
}

TEST(BucketHistogramTest, QuantileReturnsTheContainingBucketUpperBound) {
  BucketHistogram h;
  h.add(1);
  h.add(2);
  h.add(3);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.sum(), 6u);
  // rank(0.5) = 2 -> second value lives in bucket [2,3] -> upper 3.
  EXPECT_EQ(h.p50(), 3.0);
  EXPECT_EQ(h.quantile(1.0), 3.0);
  // rank(tiny) clamps to the first value's bucket.
  EXPECT_EQ(h.quantile(0.0001), 1.0);
}

TEST(BucketHistogramTest, ZeroValuesLandInBucketZero) {
  BucketHistogram h;
  h.add(0);
  h.add(0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.p50(), 0.0);
}

TEST(BucketHistogramTest, MergeAddsBucketwise) {
  BucketHistogram a;
  BucketHistogram b;
  a.add(5);
  a.add(1000);
  b.add(5);
  b.add(70000);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.sum(), 5u + 1000u + 5u + 70000u);
  EXPECT_EQ(a.bucket(BucketHistogram::bucket_index(5)), 2u);
  EXPECT_EQ(a.bucket(BucketHistogram::bucket_index(70000)), 1u);
}

TEST(BucketHistogramTest, ResetEmptiesEverything) {
  BucketHistogram h;
  h.add(9);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(BucketHistogram::bucket_index(9)), 0u);
}

// ---- exporters -------------------------------------------------------------

TEST(Exporters, PrometheusTextGolden) {
  Registry reg;
  reg.counter("a.b").inc(2);
  reg.gauge("g").set(1.5);
  const HistogramHandle h = reg.histogram("h");
  h.record(1);
  h.record(1);
  h.record(1);

  EXPECT_EQ(reg.prometheus_text(),
            "# TYPE a_b counter\n"
            "a_b 2\n"
            "# TYPE g gauge\n"
            "g 1.5\n"
            "# TYPE h histogram\n"
            "h_bucket{le=\"0\"} 0\n"
            "h_bucket{le=\"1\"} 3\n"
            "h_bucket{le=\"+Inf\"} 3\n"
            "h_sum 3\n"
            "h_count 3\n");
}

TEST(Exporters, JsonSnapshotGolden) {
  Registry reg;
  reg.counter("a.b").inc(2);
  reg.gauge("g").set(1.5);
  const HistogramHandle h = reg.histogram("h");
  h.record(1);
  h.record(1);
  h.record(1);

  EXPECT_EQ(reg.json_snapshot(),
            "{\"enabled\":true,"
            "\"counters\":{\"a.b\":2},"
            "\"gauges\":{\"g\":1.500},"
            "\"histograms\":{\"h\":{\"count\":3,\"sum\":3,"
            "\"p50\":1.0,\"p99\":1.0,\"p999\":1.0,"
            "\"buckets\":[[1,3]]}}}");
}

TEST(Exporters, EmptyRegistrySnapshotsAreWellFormed) {
  const Registry reg(/*enabled=*/false);
  EXPECT_EQ(reg.prometheus_text(), "");
  EXPECT_EQ(reg.json_snapshot(),
            "{\"enabled\":false,\"counters\":{},\"gauges\":{},"
            "\"histograms\":{}}");
}

// ---- global catalogs -------------------------------------------------------

TEST(GlobalCatalogs, CatalogHandlesFeedTheGlobalRegistry) {
#if defined(DVV_OBS_DISABLED)
  GTEST_SKIP() << "catalogs are compile-time no-ops under DVV_OBS_OFF";
#else
  const bool was_enabled = dvv::obs::registry().enabled();
  dvv::obs::set_metrics_enabled(true);
  const std::uint64_t before =
      dvv::obs::registry().counter_value("coord.reads_started");
  dvv::obs::coord_metrics().reads_started.inc();
  EXPECT_EQ(dvv::obs::registry().counter_value("coord.reads_started"),
            before + 1);
  dvv::obs::set_metrics_enabled(was_enabled);
#endif
}

// ---- flight recorder -------------------------------------------------------

TEST(FlightRecorderTest, DisarmedRecorderRecordsNothing) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.record("t", "e");
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dump_json(), "{\"recorded\":0,\"dropped\":0,\"events\":[]}");
}

TEST(FlightRecorderTest, RingKeepsTheLastCapacityEvents) {
  FlightRecorder rec;
  rec.configure(3);
  for (std::uint64_t i = 0; i < 5; ++i) rec.record("t", "e", i, i * 10);
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.size(), 3u);

  const std::string dump = rec.dump_json();
  EXPECT_NE(dump.find("\"recorded\":5"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped\":2"), std::string::npos);
  // Oldest SURVIVING event first: seqs 2, 3, 4.
  EXPECT_NE(dump.find("{\"seq\":2,"), std::string::npos);
  EXPECT_EQ(dump.find("{\"seq\":0,"), std::string::npos);
  EXPECT_EQ(dump.find("{\"seq\":1,"), std::string::npos);
  EXPECT_LT(dump.find("\"seq\":2,"), dump.find("\"seq\":4,"));
}

TEST(FlightRecorderTest, EventFieldsRoundTripThroughTheDump) {
  FlightRecorder rec;
  rec.configure(8);
  rec.record("coord", "read_start", 42, 1, 2, 3);
  const std::string dump = rec.dump_json();
  EXPECT_NE(dump.find("\"trace\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"cat\":\"coord\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"read_start\""), std::string::npos);
  EXPECT_NE(dump.find("\"a\":1,\"b\":2,\"c\":3"), std::string::npos);
}

TEST(FlightRecorderTest, ClearForgetsButStaysArmed) {
  FlightRecorder rec;
  rec.configure(4);
  rec.record("t", "e");
  rec.clear();
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.recorded(), 0u);
  rec.record("t", "e2");
  EXPECT_EQ(rec.size(), 1u);
}

TEST(FlightRecorderTest, DumpToFileWritesTheJson) {
  FlightRecorder rec;
  rec.configure(4);
  rec.record("t", "e", 9);
  const std::string path = ::testing::TempDir() + "obs_dump_roundtrip.json";
  ASSERT_TRUE(rec.dump_to_file(path.c_str()));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), rec.dump_json());
  std::remove(path.c_str());
}

// ---- env knobs -------------------------------------------------------------

TEST(EnvKnobs, MetricsParserAcceptsTheDocumentedValues) {
  using dvv::obs::detail::parse_metrics_env;
  EXPECT_FALSE(parse_metrics_env(nullptr));
  EXPECT_FALSE(parse_metrics_env(""));
  EXPECT_FALSE(parse_metrics_env("off"));
  EXPECT_FALSE(parse_metrics_env("0"));
  EXPECT_TRUE(parse_metrics_env("on"));
  EXPECT_TRUE(parse_metrics_env("1"));
}

TEST(EnvKnobs, FlightParserAcceptsTheDocumentedValues) {
  using dvv::obs::detail::parse_flight_env;
  EXPECT_EQ(parse_flight_env(nullptr), 0u);
  EXPECT_EQ(parse_flight_env(""), 0u);
  EXPECT_EQ(parse_flight_env("off"), 0u);
  EXPECT_EQ(parse_flight_env("0"), 0u);
  EXPECT_EQ(parse_flight_env("on"), 4096u);
  EXPECT_EQ(parse_flight_env("128"), 128u);
}

TEST(EnvKnobsDeathTest, JunkValuesAbortLoudly) {
  // Same contract as DVV_MECHANISM: a typo in a CI matrix leg must not
  // silently measure nothing and pass.
  EXPECT_DEATH((void)dvv::obs::detail::parse_metrics_env("On"),
               "not recognized");
  EXPECT_DEATH((void)dvv::obs::detail::parse_flight_env("always"),
               "not recognized");
}

// ---- assert-time flight dump -----------------------------------------------

TEST(FlightDumpDeathTest, AssertFailureLeavesAWellFormedDump) {
  const std::string path = ::testing::TempDir() + "obs_assert_dump.json";
  std::remove(path.c_str());
  ::setenv("DVV_FLIGHT_DUMP", path.c_str(), 1);
  dvv::obs::flight().configure(64);
  dvv::obs::flight().record("test", "before_crash", 7, 1, 2, 3);

  EXPECT_DEATH(
      {
        dvv::obs::flight().record("test", "at_crash", 8);
        DVV_ASSERT_MSG(false, "deliberate flight-dump crash");
      },
      "deliberate flight-dump crash");

  // The forked child inherited the armed recorder and dumped it on the
  // way down; both its pre-fork and its in-child events must be there.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "the crashing child left no dump at " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string dump = ss.str();
  EXPECT_EQ(dump.front(), '{');
  EXPECT_EQ(dump.back(), '}');
  EXPECT_NE(dump.find("\"events\":["), std::string::npos);
  EXPECT_NE(dump.find("before_crash"), std::string::npos);
  EXPECT_NE(dump.find("at_crash"), std::string::npos);

  std::remove(path.c_str());
  ::unsetenv("DVV_FLIGHT_DUMP");
  dvv::obs::flight().configure(0);
}

}  // namespace
