// Elastic-membership chaos suite: the ISSUE's headline proof.
//
// Claim: a cluster that lives through a JOIN/LEAVE STORM — seven
// membership transitions riding on top of seeded partition/drop/
// duplicate/reorder weather — converges, once the network quiesces and
// the last rebalance completes, to a state BYTE-IDENTICAL to a twin
// that spent its whole life on the final ring with a perfect network.
//
// The choreography keeps client decisions independent of both the
// weather AND the ring history: every key's reads and writes are
// coordinated at the FINAL ring's slot-0 owner (a provisioned replica
// exists from the start, so coordinating there is mechanical even
// before it joins).  Every replica copy therefore descends from its
// coordinator's history, and every repair channel — replication
// fan-out, transfer walks, digest anti-entropy — merges dominated
// states, which a sound clock absorbs without a trace.  Whatever byte
// of divergence the storm created, rebalancing plus anti-entropy must
// erase it; transfers are additionally metered so the test can prove
// data actually MOVED (the storm was not vacuous).
//
// Server-VV is exempt from the byte-twin claim, as in
// transport_chaos_test.cpp: it falsely orders racing clients, so which
// sibling survives depends on delivery order.  It must still converge
// INTERNALLY (same bytes on every final owner of a key).
#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "kv/ring.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::kv::Ring;
using dvv::net::SimTransport;
using dvv::util::Rng;

constexpr std::size_t kCapacity = 8;
constexpr std::size_t kReplication = 3;
constexpr std::size_t kVnodes = 32;
constexpr std::size_t kKeys = 24;
constexpr std::size_t kClients = 5;
constexpr std::size_t kOps = 500;

// The storm script: deterministic transitions at fixed op indices.
// Starts on {0,1,2,3}, ends on {3,4,5,6,7} — every kind of transition
// (grow, shrink, grow again) and every departure is graceful, so no
// acknowledged write may be lost.  No slot REJOINS here: a rejoin bumps
// the clock incarnation, which is a deliberate actor change the
// byte-twin cannot mirror (membership_test.cpp pins that behavior).
struct Transition {
  std::size_t at;  ///< before the op with this index
  bool join;
  ReplicaId node;
};
constexpr Transition kStorm[] = {
    {60, true, 4},  {120, true, 5},  {180, false, 0}, {240, true, 6},
    {300, false, 1}, {360, true, 7}, {420, false, 2},
};
const std::vector<ReplicaId> kInitialMembers = {0, 1, 2, 3};
const std::vector<ReplicaId> kFinalMembers = {3, 4, 5, 6, 7};

ClusterConfig storm_config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.servers = kCapacity;
  cfg.capacity = kCapacity;
  cfg.initial_members = kInitialMembers;
  cfg.replication = kReplication;
  cfg.vnodes = kVnodes;
  cfg.transport.kind = dvv::net::TransportKind::kSim;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  cfg.transport.sim.seed = seed ^ 0xfa417ULL;
  cfg.transport.sim.drop_probability = 0.10;
  cfg.transport.sim.duplicate_probability = 0.15;
  cfg.transport.sim.reorder_window = 4;
  cfg.transport.sim.auto_settle = false;  // real in-flight windows
  return cfg;
}

ClusterConfig static_twin_config() {
  ClusterConfig cfg;
  cfg.servers = kCapacity;
  cfg.capacity = kCapacity;
  cfg.initial_members = kFinalMembers;  // born on the storm's final ring
  cfg.replication = kReplication;
  cfg.vnodes = kVnodes;
  cfg.transport.kind = dvv::net::TransportKind::kInline;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  return cfg;
}

/// The seeded workload, identical on both sides: read-modify-write and
/// blind writes, every key coordinated (and read) at the FINAL ring's
/// slot-0 owner.  `storm` additionally pumps, partitions, heals, fires
/// background syncs, and executes the scripted membership transitions
/// (each preceded by a heal + drain — an operator acts at a healthy
/// moment — and completed inline).  Returns the keys the rebalances
/// shipped, so the caller can assert the storm actually moved data.
template <typename M>
std::uint64_t run_storm(Cluster<M>& cluster, std::uint64_t seed, bool storm) {
  const Ring final_ring(kFinalMembers, kReplication, kVnodes);
  Rng rng(seed);
  Rng net_rng(seed ^ 0x9e37ULL);  // weather stream, shared schedule
  using Context = typename M::Context;
  std::map<std::pair<std::size_t, Key>, Context> contexts;
  std::uint64_t keys_shipped = 0;
  std::size_t next_transition = 0;

  for (std::size_t op = 0; op < kOps; ++op) {
    // The weather schedule draws from its own stream on BOTH sides so
    // the client-visible stream below stays in lockstep; the twin just
    // ignores the decisions.
    const bool do_partition = net_rng.chance(0.04);
    const bool do_heal = net_rng.chance(0.10);
    const bool do_pump = net_rng.chance(0.50);
    const bool do_sync = net_rng.chance(0.08);
    const auto sync_a = static_cast<ReplicaId>(net_rng.index(kCapacity));
    auto sync_b = static_cast<ReplicaId>(net_rng.index(kCapacity - 1));
    if (sync_b >= sync_a) ++sync_b;
    const auto groups = dvv::net::random_split<ReplicaId>(net_rng, kCapacity);

    if (storm) {
      if (next_transition < std::size(kStorm) &&
          kStorm[next_transition].at == op) {
        // Heal and drain first: a transition needs every transfer
        // source reachable, and completing it inline keeps the next
        // op routing on the new ring.
        cluster.heal();
        cluster.pump_all();
        const Transition& t = kStorm[next_transition++];
        if (t.join) {
          cluster.join_node(t.node);
        } else {
          cluster.leave_node(t.node);
        }
        keys_shipped += cluster.complete_rebalance().totals.keys_shipped;
      }
      if (do_partition && !cluster.transport().partitioned()) {
        cluster.partition(groups, "storm");
      } else if (do_heal && cluster.transport().partitioned()) {
        cluster.heal();
      }
      if (do_pump) cluster.pump();
      if (do_sync) (void)cluster.request_sync(sync_a, sync_b);
    }

    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const ReplicaId coordinator = final_ring.preference_list(key)[0];
    const std::size_t client = rng.index(kClients);
    const bool rmw = rng.chance(0.7);
    Context ctx{};
    if (rmw) {
      // Read at the coordinator itself: the context reflects exactly
      // the coordinator's state, which neither the weather nor the
      // ring history can touch (see the file comment).
      ctx = cluster.get(key, coordinator).context;
      contexts[{client, key}] = ctx;
    }
    // Fan out to the CURRENT ring's owners (plus dual-apply targets
    // mid-transfer — vacuous here, transitions complete inline): the
    // storm side replicates where the data lives today, the transfers
    // and the final digest pass are what carry it to the final owners.
    cluster.put(key, coordinator, dvv::kv::client_actor(client), ctx,
                "w" + std::to_string(op), cluster.replication_targets(key));
  }
  return keys_shipped;
}

/// Quiesce: zero fault rates, heal, drain, then drive the digest pass
/// to its fixed point.
template <typename M>
void quiesce(Cluster<M>& cluster) {
  auto* sim = dynamic_cast<SimTransport*>(&cluster.transport());
  if (sim != nullptr) sim->set_fault_rates(0.0, 0.0, 0);
  cluster.heal();
  cluster.pump_all();
  for (std::size_t round = 0; round < 8; ++round) {
    if (cluster.anti_entropy_digest().stats.keys_shipped == 0) break;
  }
}

/// Byte-level snapshot of one replica's state for `key` (nullopt when
/// the replica holds nothing — compared as such: an owner missing a
/// key its twin holds is divergence too).
template <typename M>
std::optional<std::string> encoded(Cluster<M>& cluster, ReplicaId r,
                                   const Key& key) {
  const auto* stored = cluster.replica(r).find(key);
  if (stored == nullptr) return std::nullopt;
  dvv::codec::Writer w;
  dvv::codec::encode(w, *stored);
  const auto* p = reinterpret_cast<const char*>(w.buffer().data());
  return std::string(p, w.size());
}

template <typename M>
class MembershipChaosTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(MembershipChaosTest, AllMechanisms);

TYPED_TEST(MembershipChaosTest, StormConvergesToStaticRingTwin) {
  const Ring final_ring(kFinalMembers, kReplication, kVnodes);
  for (const std::uint64_t seed : {7ULL, 123ULL, 20120716ULL}) {
    Cluster<TypeParam> stormed(storm_config(seed), {});
    Cluster<TypeParam> twin(static_twin_config(), {});
    const std::uint64_t shipped = run_storm(stormed, seed, /*storm=*/true);
    (void)run_storm(twin, seed, /*storm=*/false);

    // The storm must have actually happened: every transition ran,
    // transfers moved real data, and the network genuinely misbehaved.
    ASSERT_EQ(stormed.ring_epoch(), std::size(kStorm)) << "seed " << seed;
    ASSERT_EQ(stormed.members(), kFinalMembers);
    ASSERT_EQ(twin.ring_epoch(), 0u);
    ASSERT_GT(shipped, 0u) << "rebalances shipped nothing (seed " << seed << ")";
    const auto& stats = stormed.transport().stats();
    ASSERT_GT(stats.dropped, 0u) << "seed " << seed;
    ASSERT_GT(stats.duplicated, 0u);

    quiesce(stormed);
    quiesce(twin);

    // Sound mechanisms: every key reads byte-identically at every
    // FINAL owner on both sides.  Replicas outside the final
    // preference list are legitimately different — departed members
    // keep their (drained, superseded) copies and the twin never
    // wrote there — so the comparison is per final owner, not global.
    constexpr bool kSoundUnderChaos =
        !std::is_same_v<TypeParam, dvv::kv::ServerVvMechanism>;
    for (std::size_t k = 0; k < kKeys; ++k) {
      const Key key = "key-" + std::to_string(k);
      const auto owners = final_ring.preference_list(key);
      if constexpr (kSoundUnderChaos) {
        for (const ReplicaId r : owners) {
          EXPECT_EQ(encoded(stormed, r, key), encoded(twin, r, key))
              << "key " << key << " at replica " << r
              << " diverges from the static-ring twin (seed " << seed << ")";
        }
      }
      // Every mechanism, sound or not, must still converge INTERNALLY
      // across the final owners.
      for (const ReplicaId r : owners) {
        EXPECT_EQ(encoded(stormed, r, key), encoded(stormed, owners[0], key))
            << "key " << key << " differs between final owners " << r
            << " and " << owners[0] << " (seed " << seed << ")";
      }
    }

    // And it is a fixed point: nothing ships on one more pass.
    EXPECT_EQ(stormed.anti_entropy_digest().stats.keys_shipped, 0u);
    EXPECT_EQ(stormed.anti_entropy(), 0u);
  }
}

}  // namespace
