// Unit tests for core::VersionVector: the classic mechanism of Parker et
// al. and the causal-past component of every DVV.  Includes the paper's
// Figure 1b observation that a per-server VV cannot express concurrency
// between client writes ([2,0] < [3,0]).
#include "core/version_vector.hpp"

#include <gtest/gtest.h>

#include "core/causality.hpp"
#include "core/dot.hpp"
#include "util/rng.hpp"

namespace {

using dvv::core::Dot;
using dvv::core::Ordering;
using dvv::core::VersionVector;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;
constexpr dvv::core::ActorId kC = 2;

TEST(VersionVector, EmptyVectorBehaviour) {
  VersionVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.get(kA), 0u);
  EXPECT_EQ(v.total_events(), 0u);
  EXPECT_FALSE(v.contains(Dot{kA, 1}));
}

TEST(VersionVector, SetAndGet) {
  VersionVector v;
  v.set(kA, 3);
  EXPECT_EQ(v.get(kA), 3u);
  EXPECT_EQ(v.get(kB), 0u);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VersionVector, SettingZeroerasesEntry) {
  VersionVector v{{kA, 2}, {kB, 1}};
  v.set(kA, 0);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.get(kA), 0u);
  EXPECT_EQ(v.get(kB), 1u);
}

TEST(VersionVector, IncrementMintsSequentialDots) {
  VersionVector v;
  EXPECT_EQ(v.increment(kA), (Dot{kA, 1}));
  EXPECT_EQ(v.increment(kA), (Dot{kA, 2}));
  EXPECT_EQ(v.increment(kB), (Dot{kB, 1}));
  EXPECT_EQ(v.get(kA), 2u);
  EXPECT_EQ(v.get(kB), 1u);
}

TEST(VersionVector, ContainsIsDownwardClosed) {
  VersionVector v{{kA, 3}};
  EXPECT_TRUE(v.contains(Dot{kA, 1}));
  EXPECT_TRUE(v.contains(Dot{kA, 2}));
  EXPECT_TRUE(v.contains(Dot{kA, 3}));
  EXPECT_FALSE(v.contains(Dot{kA, 4}));
  EXPECT_FALSE(v.contains(Dot{kB, 1}));
}

TEST(VersionVector, MergeTakesPointwiseMax) {
  VersionVector a{{kA, 3}, {kB, 1}};
  VersionVector b{{kA, 1}, {kB, 4}, {kC, 2}};
  a.merge(b);
  EXPECT_EQ(a.get(kA), 3u);
  EXPECT_EQ(a.get(kB), 4u);
  EXPECT_EQ(a.get(kC), 2u);
}

TEST(VersionVector, MergeIsIdempotentCommutativeAssociative) {
  const VersionVector a{{kA, 3}, {kB, 1}};
  const VersionVector b{{kB, 4}, {kC, 2}};
  const VersionVector c{{kA, 1}, {kC, 5}};

  VersionVector aa = a;
  aa.merge(a);
  EXPECT_EQ(aa, a);  // idempotent

  VersionVector ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // commutative

  VersionVector ab_c = ab, a_bc = a, bc = b;
  ab_c.merge(c);
  bc.merge(c);
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);  // associative
}

TEST(VersionVector, AbsorbRaisesEntryToDot) {
  VersionVector v{{kA, 1}};
  v.absorb(Dot{kA, 3});
  EXPECT_EQ(v.get(kA), 3u);
  v.absorb(Dot{kA, 2});  // lower dot: no effect
  EXPECT_EQ(v.get(kA), 3u);
  v.absorb(Dot{kB, 1});
  EXPECT_EQ(v.get(kB), 1u);
}

TEST(VersionVector, CompareEqual) {
  const VersionVector a{{kA, 2}, {kB, 1}};
  const VersionVector b{{kB, 1}, {kA, 2}};
  EXPECT_EQ(a.compare(b), Ordering::kEqual);
  EXPECT_EQ(VersionVector{}.compare(VersionVector{}), Ordering::kEqual);
}

TEST(VersionVector, CompareDominance) {
  const VersionVector small{{kA, 1}};
  const VersionVector big{{kA, 2}, {kB, 1}};
  EXPECT_EQ(small.compare(big), Ordering::kBefore);
  EXPECT_EQ(big.compare(small), Ordering::kAfter);
  EXPECT_TRUE(big.descends(small));
  EXPECT_FALSE(small.descends(big));
}

TEST(VersionVector, CompareConcurrent) {
  const VersionVector a{{kA, 2}};
  const VersionVector b{{kB, 1}};
  EXPECT_EQ(a.compare(b), Ordering::kConcurrent);
  EXPECT_EQ(b.compare(a), Ordering::kConcurrent);
  EXPECT_FALSE(a.descends(b));
  EXPECT_FALSE(b.descends(a));
}

TEST(VersionVector, EmptyIsBottom) {
  const VersionVector empty;
  const VersionVector v{{kA, 1}};
  EXPECT_EQ(empty.compare(v), Ordering::kBefore);
  EXPECT_EQ(v.compare(empty), Ordering::kAfter);
  EXPECT_TRUE(v.descends(empty));
  EXPECT_TRUE(empty.descends(empty));
}

// The paper's Figure 1b anomaly, stated at the VV level: after two
// concurrent client writes through the same server, the per-server rule
// is forced to tag them [2,0] and [3,0] — and [2,0] < [3,0], so the true
// sibling looks obsolete.  (The kernel-level reproduction lives in the
// server-VV workflow tests; this pins the arithmetic the paper quotes.)
TEST(VersionVector, Fig1bFalseDominanceArithmetic) {
  const VersionVector first_write{{kA, 2}};   // [2,0]
  const VersionVector second_write{{kA, 3}};  // [3,0]
  EXPECT_EQ(first_write.compare(second_write), Ordering::kBefore)
      << "the per-server VV cannot express the real concurrency";
}

TEST(VersionVector, DescendsSelfAndMergeResult) {
  dvv::util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    VersionVector a, b;
    for (dvv::core::ActorId actor = 0; actor < 6; ++actor) {
      if (rng.chance(0.6)) a.set(actor, rng.below(5) + 1);
      if (rng.chance(0.6)) b.set(actor, rng.below(5) + 1);
    }
    VersionVector joined = a;
    joined.merge(b);
    EXPECT_TRUE(joined.descends(a));
    EXPECT_TRUE(joined.descends(b));
    EXPECT_TRUE(a.descends(a));
    // compare() must agree with descends() in both directions.
    const auto ord = a.compare(b);
    EXPECT_EQ(ord == Ordering::kAfter || ord == Ordering::kEqual, a.descends(b));
    EXPECT_EQ(ord == Ordering::kBefore || ord == Ordering::kEqual, b.descends(a));
  }
}

TEST(VersionVector, TotalEventsSumsCounters) {
  const VersionVector v{{kA, 3}, {kB, 2}};
  EXPECT_EQ(v.total_events(), 5u);
}

TEST(VersionVector, ToStringDenseMatchesPaperNotation) {
  const VersionVector v{{kA, 2}};
  EXPECT_EQ(v.to_string_dense({kA, kB}), "[2,0]");
  const VersionVector w{{kA, 1}, {kB, 1}};
  EXPECT_EQ(w.to_string_dense({kA, kB}), "[1,1]");
}

TEST(VersionVector, ToStringSparse) {
  const VersionVector v{{kA, 2}, {kB, 1}};
  EXPECT_EQ(v.to_string([](dvv::core::ActorId id) {
    return std::string(1, static_cast<char>('A' + id));
  }),
            "{A:2, B:1}");
}

}  // namespace
