// bench_store_latency — experiment E7: the paper's Riak evaluation,
// latency half ("better latency when serving requests").
//
// Event-driven closed-loop simulation (src/sim/sim_store.hpp): every
// network leg pays for the bytes it actually carries, so mechanisms
// with fatter clocks serve slower replies.  The workload is identical
// across mechanisms (same seed, same topology, same think times), so
// latency differences are attributable to metadata size alone — which
// is precisely the paper's causal claim.
//
// Expected shape: with few clients all mechanisms are close; as the
// writer population grows, client-VV replies fatten and its latency
// curve lifts away from DVV/DVVSet, most visibly at the tail (p99).
#include <cstdio>
#include <string>

#include "sim/sim_store.hpp"
#include "util/fmt.hpp"

namespace {

using dvv::sim::simulate_store;
using dvv::sim::SimStoreConfig;
using dvv::util::fixed;

SimStoreConfig config_for(std::size_t clients) {
  SimStoreConfig config;
  config.clients = clients;
  config.keys = 24;  // hot keyspace: real contention
  config.zipf_skew = 0.99;
  config.ops_per_client = 300;
  config.think_ms = 1.0;
  config.value_bytes = 64;
  config.seed = 0xE7;
  return config;
}

void run_row(dvv::util::TextTable& table, std::size_t clients,
             const char* mechanism) {
  SimStoreConfig config = config_for(clients);
  config.mechanism = mechanism;  // runtime choice through the kv::Store facade
  const auto result = simulate_store(config);
  table.row({std::to_string(clients), mechanism,
             fixed(result.cycle_latency_ms.mean(), 3),
             fixed(result.cycle_latency_ms.p50(), 3),
             fixed(result.cycle_latency_ms.p95(), 3),
             fixed(result.cycle_latency_ms.p99(), 3),
             fixed(result.get_reply_bytes.mean(), 0),
             fixed(result.get_reply_bytes.p99(), 0)});
}

}  // namespace

int main() {
  std::printf("==== E7: request latency under metadata load (simulated) ====\n");
  std::printf("5 servers, R=3, 24 hot keys, closed loop RMW, W=1 async\n");
  std::printf("replication; LAN model: 0.20ms base, ~1Gb/s, 2us/KB CPU,\n");
  std::printf("0.05ms exp jitter; seed=0xE7\n\n");

  dvv::util::TextTable table;
  table.header({"clients", "mechanism", "cycle ms mean", "p50", "p95", "p99",
                "GET reply B", "reply B p99"});
  for (const std::size_t clients : {8u, 32u, 96u, 192u}) {
    run_row(table, clients, "client-vv");
    run_row(table, clients, "dvv");
    run_row(table, clients, "dvvset");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: at 8 clients the mechanisms are near-identical; as\n");
  std::printf("clients grow, client-vv reply bytes rise (entries accumulate)\n");
  std::printf("and its latency lifts above dvv/dvvset — same ordering, same\n");
  std::printf("cause (metadata on the wire) as the paper's Riak result.\n");
  return 0;
}
