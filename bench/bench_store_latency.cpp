// bench_store_latency — experiment E7: the paper's Riak evaluation,
// latency half ("better latency when serving requests").
//
// Event-driven closed-loop simulation (src/sim/sim_store.hpp): every
// network leg pays for the bytes it actually carries, so mechanisms
// with fatter clocks serve slower replies.  The workload is identical
// across mechanisms (same seed, same topology, same think times), so
// latency differences are attributable to metadata size alone — which
// is precisely the paper's causal claim.
//
// Expected shape: with few clients all mechanisms are close; as the
// writer population grows, client-VV replies fatten and its latency
// curve lifts away from DVV/DVVSet, most visibly at the tail (p99).
//
// Output: table + BENCH_store_latency.json (the obs-snapshot schema
// shared with BENCH_transport.json: {bench, seed, obs, config,
// rows[]}), so CI and notebooks consume both benches the same way.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/sim_store.hpp"
#include "util/fmt.hpp"

namespace {

using dvv::sim::simulate_store;
using dvv::sim::SimStoreConfig;
using dvv::util::fixed;

constexpr std::uint64_t kSeed = 0xE7;

SimStoreConfig config_for(std::size_t clients) {
  SimStoreConfig config;
  config.clients = clients;
  config.keys = 24;  // hot keyspace: real contention
  config.zipf_skew = 0.99;
  config.ops_per_client = 300;
  config.think_ms = 1.0;
  config.value_bytes = 64;
  config.seed = kSeed;
  return config;
}

struct Row {
  std::size_t clients = 0;
  std::string mechanism;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double reply_bytes_mean = 0.0;
  double reply_bytes_p99 = 0.0;
};

Row run_row(dvv::util::TextTable& table, std::size_t clients,
            const char* mechanism) {
  SimStoreConfig config = config_for(clients);
  config.mechanism = mechanism;  // runtime choice through the kv::Store facade
  const auto result = simulate_store(config);
  Row row;
  row.clients = clients;
  row.mechanism = mechanism;
  row.mean_ms = result.cycle_latency_ms.mean();
  row.p50_ms = result.cycle_latency_ms.p50();
  row.p95_ms = result.cycle_latency_ms.p95();
  row.p99_ms = result.cycle_latency_ms.p99();
  row.reply_bytes_mean = result.get_reply_bytes.mean();
  row.reply_bytes_p99 = result.get_reply_bytes.p99();
  table.row({std::to_string(clients), mechanism, fixed(row.mean_ms, 3),
             fixed(row.p50_ms, 3), fixed(row.p95_ms, 3), fixed(row.p99_ms, 3),
             fixed(row.reply_bytes_mean, 0), fixed(row.reply_bytes_p99, 0)});
  return row;
}

void write_json(const std::vector<Row>& rows) {
  std::FILE* f = std::fopen("BENCH_store_latency.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_store_latency.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"store_latency\",\n  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"obs\": %s,\n",
               dvv::obs::registry().json_snapshot().c_str());
  std::fprintf(f,
               "  \"config\": {\"servers\": 5, \"replication\": 3, "
               "\"keys\": 24, \"ops_per_client\": 300, \"value_bytes\": 64},\n"
               "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"section\": \"latency\", \"clients\": %zu, "
        "\"mechanism\": \"%s\", \"cycle_ms_mean\": %.3f, \"p50_ms\": %.3f, "
        "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"get_reply_bytes_mean\": %.0f, "
        "\"get_reply_bytes_p99\": %.0f}%s\n",
        r.clients, r.mechanism.c_str(), r.mean_ms, r.p50_ms, r.p95_ms,
        r.p99_ms, r.reply_bytes_mean, r.reply_bytes_p99,
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("==== E7: request latency under metadata load (simulated) ====\n");
  std::printf("5 servers, R=3, 24 hot keys, closed loop RMW, W=1 async\n");
  std::printf("replication; LAN model: 0.20ms base, ~1Gb/s, 2us/KB CPU,\n");
  std::printf("0.05ms exp jitter; seed=0xE7\n\n");

  // The global registry rides along so the JSON's obs snapshot carries
  // the net/coord/store counters the workload generated (behavior
  // invariance: metrics never change results — obs_twin_test).
  dvv::obs::set_metrics_enabled(true);

  dvv::util::TextTable table;
  table.header({"clients", "mechanism", "cycle ms mean", "p50", "p95", "p99",
                "GET reply B", "reply B p99"});
  std::vector<Row> rows;
  for (const std::size_t clients : {8u, 32u, 96u, 192u}) {
    rows.push_back(run_row(table, clients, "client-vv"));
    rows.push_back(run_row(table, clients, "dvv"));
    rows.push_back(run_row(table, clients, "dvvset"));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: at 8 clients the mechanisms are near-identical; as\n");
  std::printf("clients grow, client-vv reply bytes rise (entries accumulate)\n");
  std::printf("and its latency lifts above dvv/dvvset — same ordering, same\n");
  std::printf("cause (metadata on the wire) as the paper's Riak result.\n");
  write_json(rows);
  std::printf("wrote BENCH_store_latency.json (%zu rows)\n", rows.size());
  return 0;
}
