// bench_store_backend — the cost of durability (src/store).
//
// Two sweeps over a single replica running a read-modify-write loop
// through its storage backend:
//
//   group commit   write throughput vs WalConfig::flush_every: 1 is
//                  write-through (every record fsync'd), larger batches
//                  amortize the barrier — the classic group-commit
//                  curve — with MemBackend as the no-durability roof.
//
//   recovery       crash + WAL replay time vs surviving log size, with
//                  compaction on and off: compaction bounds the log (and
//                  therefore recovery) by live state instead of write
//                  history.
//
// The "disk" is the byte-faithful in-process model (see store/backend.hpp),
// so the numbers isolate the WAL's own work — framing, CRC, flush
// bookkeeping, replay decode — from device physics, the same way the
// latency sim isolates serialization cost from real NICs.
//
// Output: tables + BENCH_store_backend.json (schema: {bench, seed,
// config, rows[]}, rows tagged by section).  Structural invariants are
// asserted (flush counts, replay completeness); wall-clock numbers are
// reported, not asserted.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "kv/mechanism.hpp"
#include "kv/replica.hpp"
#include "obs/obs.hpp"
#include "store/mem_backend.hpp"
#include "store/wal_backend.hpp"
#include "util/fmt.hpp"

namespace {

using dvv::kv::DvvMechanism;
using dvv::kv::Replica;
using dvv::store::MemBackend;
using dvv::store::StorageBackend;
using dvv::store::WalBackend;
using dvv::store::WalConfig;

constexpr std::size_t kKeys = 64;
constexpr std::size_t kValueBytes = 64;
constexpr std::size_t kCommitOps = 20'000;

std::string key_name(std::size_t i) { return "key-" + std::to_string(i % kKeys); }

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Read-modify-write `ops` times through the replica (realistic write
/// path: every put carries the current context, so states stay compact
/// and every append is one key's fresh encoding).
double run_writes(Replica<DvvMechanism>& replica, std::size_t ops) {
  const DvvMechanism mech;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    const std::string key = key_name(i);
    typename DvvMechanism::Context ctx;
    if (const auto* stored = replica.find(key)) ctx = mech.context_of(*stored);
    replica.put(mech, key, 0, dvv::kv::client_actor(0), ctx,
                "v" + std::to_string(i) + std::string(kValueBytes, 'x'));
  }
  return ms_since(start);
}

struct Row {
  std::string section;
  std::string backend;
  std::size_t flush_every = 0;
  bool compaction = false;
  std::size_t ops = 0;
  double wall_ms = 0.0;
  double kops_per_sec = 0.0;
  std::size_t flushes = 0;
  std::size_t log_bytes = 0;
  std::size_t records_replayed = 0;
  double recover_ms = 0.0;
};

Row bench_group_commit(std::size_t flush_every) {
  WalConfig config;
  config.flush_every = flush_every;
  config.segment_bytes = 256 * 1024;
  Replica<DvvMechanism> replica(0, std::make_unique<WalBackend>(config));
  Row row;
  row.section = "group_commit";
  row.backend = "wal";
  row.flush_every = flush_every;
  row.ops = kCommitOps;
  row.wall_ms = run_writes(replica, kCommitOps);
  row.kops_per_sec = static_cast<double>(kCommitOps) / row.wall_ms;
  const auto& wal = dynamic_cast<const WalBackend&>(replica.backend());
  row.flushes = wal.stats().flushes;
  row.log_bytes = wal.log_bytes();
  return row;
}

Row bench_mem_baseline() {
  Replica<DvvMechanism> replica(0, std::make_unique<MemBackend>());
  Row row;
  row.section = "group_commit";
  row.backend = "mem";
  row.ops = kCommitOps;
  row.wall_ms = run_writes(replica, kCommitOps);
  row.kops_per_sec = static_cast<double>(kCommitOps) / row.wall_ms;
  return row;
}

Row bench_recovery(std::size_t ops, bool compaction) {
  WalConfig config;
  config.flush_every = 1;
  config.segment_bytes = 64 * 1024;
  if (!compaction) config.compact_min_segments = ~std::size_t{0};
  Replica<DvvMechanism> replica(0, std::make_unique<WalBackend>(config));
  run_writes(replica, ops);

  Row row;
  row.section = "recovery";
  row.backend = "wal";
  row.compaction = compaction;
  row.ops = ops;
  row.log_bytes = replica.backend().log_bytes();
  replica.crash();
  const auto start = std::chrono::steady_clock::now();
  const auto stats = replica.recover();
  row.recover_ms = ms_since(start);
  row.records_replayed = stats.records_replayed;

  DVV_ASSERT_MSG(replica.key_count() == kKeys,
                 "recovery must restore every live key");
  // Small logs may never seal enough segments to trigger compaction;
  // from 10k writes on, the garbage ratio guarantees it fires.
  DVV_ASSERT_MSG(!compaction || ops < 10'000 || stats.records_replayed < ops,
                 "compaction must drop overwritten records");
  return row;
}

void write_json(const std::vector<Row>& rows) {
  std::FILE* f = std::fopen("BENCH_store_backend.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_store_backend.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"store_backend\",\n  \"seed\": 0,\n");
  std::fprintf(f, "  \"obs\": %s,\n", dvv::obs::registry().json_snapshot().c_str());
  std::fprintf(f,
               "  \"config\": {\"keys\": %zu, \"value_bytes\": %zu, "
               "\"commit_ops\": %zu},\n  \"rows\": [\n",
               kKeys, kValueBytes, kCommitOps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"section\": \"%s\", \"backend\": \"%s\", \"flush_every\": %zu, "
        "\"compaction\": %s, \"ops\": %zu, \"wall_ms\": %.3f, "
        "\"kops_per_sec\": %.1f, \"flushes\": %zu, \"log_bytes\": %zu, "
        "\"records_replayed\": %zu, \"recover_ms\": %.3f}%s\n",
        r.section.c_str(), r.backend.c_str(), r.flush_every,
        r.compaction ? "true" : "false", r.ops, r.wall_ms, r.kops_per_sec,
        r.flushes, r.log_bytes, r.records_replayed, r.recover_ms,
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  // Metrics on for the whole run (behavior-invariant by the obs twin
  // property) so the embedded registry snapshot holds real numbers.
  dvv::obs::set_metrics_enabled(true);
  std::printf("==== store backend: group-commit throughput ====\n");
  std::printf("%zu RMW puts over %zu keys, %zu-byte values\n\n", kCommitOps,
              kKeys, kValueBytes);

  std::vector<Row> rows;
  std::size_t prev_flushes = ~std::size_t{0};
  for (const std::size_t flush_every : {1u, 4u, 16u, 64u, 256u}) {
    rows.push_back(bench_group_commit(flush_every));
    DVV_ASSERT_MSG(rows.back().flushes < prev_flushes,
                   "bigger commit batches must mean fewer fsync barriers");
    prev_flushes = rows.back().flushes;
  }
  rows.push_back(bench_mem_baseline());

  dvv::util::TextTable commit_table;
  commit_table.header({"backend", "flush every", "kops/s", "wall ms", "fsyncs",
                       "log bytes"});
  for (const Row& r : rows) {
    commit_table.row({r.backend, std::to_string(r.flush_every),
                      dvv::util::fixed(r.kops_per_sec, 1),
                      dvv::util::fixed(r.wall_ms, 2), std::to_string(r.flushes),
                      std::to_string(r.log_bytes)});
  }
  std::printf("%s\n", commit_table.to_string().c_str());

  std::printf("==== store backend: recovery time vs log size ====\n\n");
  const std::size_t before = rows.size();
  for (const bool compaction : {false, true}) {
    for (const std::size_t ops : {2'000u, 10'000u, 50'000u}) {
      rows.push_back(bench_recovery(ops, compaction));
    }
  }
  dvv::util::TextTable recovery_table;
  recovery_table.header({"writes", "compaction", "log bytes", "replayed",
                         "recover ms"});
  for (std::size_t i = before; i < rows.size(); ++i) {
    const Row& r = rows[i];
    recovery_table.row({std::to_string(r.ops), r.compaction ? "on" : "off",
                        std::to_string(r.log_bytes),
                        std::to_string(r.records_replayed),
                        dvv::util::fixed(r.recover_ms, 3)});
  }
  std::printf("%s\n", recovery_table.to_string().c_str());

  write_json(rows);
  std::printf("wrote BENCH_store_backend.json\n");
  return 0;
}
