// bench_store_metadata — experiment E6: the paper's Riak evaluation,
// metadata half ("a significant reduction in the size of metadata").
//
// End-to-end simulated store (6 servers, R=3), realistic mixed workload
// (Zipf keys, read-modify-write sessions plus anonymous blind writers,
// partial replication with periodic anti-entropy).  Sweeping the client
// population, we report what every GET reply carries in causality
// metadata — the bytes the paper's modified Riak stopped shipping.
//
// Expected shape: client-VV mean/p95 reply metadata grows with the
// client population (every writer leaves an entry); DVV and DVVSet stay
// flat; the pruned client-VV stays flat too but E8 shows what that
// costs in correctness.
#include <cstdio>
#include <string>

#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "util/fmt.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::util::fixed;
using dvv::workload::WorkloadSpec;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

WorkloadSpec spec_for(std::size_t clients) {
  WorkloadSpec spec;
  spec.keys = 32;
  spec.zipf_skew = 0.99;
  spec.clients = clients;
  spec.operations = 4000;
  spec.read_before_write = 0.8;
  spec.replicate_probability = 0.8;
  spec.anti_entropy_every = 200;
  spec.value_bytes = 32;
  spec.seed = 0xE6;
  return spec;
}

template <typename M>
void run_row(dvv::util::TextTable& table, std::size_t clients, const char* name,
             M mechanism) {
  const auto spec = spec_for(clients);
  const auto trace = dvv::workload::generate_trace(spec, config().replication);
  Cluster<M> cluster(config(), std::move(mechanism));
  const auto stats = dvv::workload::replay(cluster, trace);

  table.row({std::to_string(clients), name,
             fixed(stats.get_metadata_bytes.mean(), 1),
             fixed(stats.get_metadata_bytes.p95(), 0),
             fixed(stats.get_clock_entries.mean(), 2),
             fixed(stats.get_siblings.mean(), 2),
             std::to_string(stats.final_metadata_bytes)});
}

}  // namespace

int main() {
  std::printf("==== E6: end-to-end metadata on the wire (simulated Riak) ====\n");
  std::printf("6 servers, R=3, 32 hot keys (zipf .99), 4000 writes, 80%% RMW,\n");
  std::printf("replication p=0.8 with anti-entropy every 200 ops, seed=0xE6\n\n");

  dvv::util::TextTable table;
  table.header({"clients", "mechanism", "GET meta B (mean)", "p95",
                "clock entries/GET", "siblings/GET", "final meta bytes"});
  for (const std::size_t clients : {8u, 16u, 32u, 64u, 128u, 256u}) {
    run_row(table, clients, "client-vv", dvv::kv::ClientVvMechanism{});
    run_row(table, clients, "client-vv(cap10)", dvv::kv::pruned_client_vv(10));
    run_row(table, clients, "dvv", dvv::kv::DvvMechanism{});
    run_row(table, clients, "dvvset", dvv::kv::DvvSetMechanism{});
    run_row(table, clients, "vve", dvv::kv::VveMechanism{});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: client-vv metadata grows with the client column;\n");
  std::printf("dvv/dvvset stay flat (bounded by R=3 coordinating servers);\n");
  std::printf("the capped baseline is flat only because it discards history\n");
  std::printf("(see bench_pruning_safety for the damage).\n");
  return 0;
}
