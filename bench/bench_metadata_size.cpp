// bench_metadata_size — experiment E5: "size bounded by the degree of
// replication, and not by the number of concurrent writers".
//
// Kernel-level sweep.  One key on a 3-replica preference list; W
// concurrent one-shot writers race (each reads the initial version,
// then writes through a random preference-list server); afterwards one
// reader reconciles.  For each mechanism we report the peak clock-entry
// count and the peak serialized metadata bytes as W grows.
//
// Expected shape (the paper's claim): client-VV rows grow linearly with
// W; server-VV, DVV and DVVSet stay flat at <= R-ish entries per
// sibling; causal histories grow with total events (shown for scale).
#include <cstdio>
#include <string>
#include <vector>

#include "codec/clock_codec.hpp"
#include "core/dvv_kernel.hpp"
#include "core/dvv_set.hpp"
#include "core/history_kernel.hpp"
#include "core/vv_kernels.hpp"
#include "kv/types.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace {

using namespace dvv::core;

constexpr std::size_t kReplicas = 3;
constexpr std::uint64_t kSeed = 0xE5;

struct Row {
  std::size_t peak_entries = 0;
  std::size_t peak_meta_bytes = 0;
  std::size_t merged_entries = 0;
};

/// Drives the racing-writers scenario against any kernel.  `update`
/// adapts the kernel's writer-actor convention (client id vs server id).
template <typename Kernel, typename Update, typename Entries, typename Meta>
Row run(std::size_t writers, Update&& update, Entries&& entries, Meta&& meta) {
  dvv::util::Rng rng(kSeed);
  std::vector<Kernel> replica(kReplicas);

  // Seed version, fully replicated.
  update(replica[0], /*server=*/0, /*client=*/dvv::kv::client_actor(0),
         replica[0].context(), std::string("seed"));
  for (std::size_t r = 1; r < kReplicas; ++r) replica[r].sync(replica[0]);

  Row row;
  const auto stale = replica[0].context();  // all writers read the seed
  for (std::size_t w = 0; w < writers; ++w) {
    const std::size_t server = rng.index(kReplicas);
    update(replica[server], server, dvv::kv::client_actor(1 + w), stale,
           "w" + std::to_string(w));
    row.peak_entries = std::max(row.peak_entries, entries(replica[server]));
    row.peak_meta_bytes = std::max(row.peak_meta_bytes, meta(replica[server]));
  }
  // Anti-entropy, then one reader reconciles everything through server 0.
  for (std::size_t r = 1; r < kReplicas; ++r) {
    replica[0].sync(replica[r]);
  }
  row.peak_entries = std::max(row.peak_entries, entries(replica[0]));
  row.peak_meta_bytes = std::max(row.peak_meta_bytes, meta(replica[0]));
  update(replica[0], 0, dvv::kv::client_actor(999), replica[0].context(),
         std::string("merged"));
  row.merged_entries = entries(replica[0]);
  return row;
}

}  // namespace

int main() {
  std::printf("==== E5: clock size vs number of concurrent writers ====\n");
  std::printf("1 hot key, %zu replicas, W one-shot writers racing on a stale "
              "read; seed=0x%llX\n\n",
              kReplicas, static_cast<unsigned long long>(kSeed));

  dvv::util::TextTable table;
  table.header({"writers W", "mechanism", "peak entries", "peak meta bytes",
                "entries after merge"});

  for (const std::size_t w : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const auto cvv = run<ClientVvSiblings<std::string>>(
        w,
        [](auto& k, std::size_t, ActorId client, const VersionVector& ctx,
           std::string v) { k.update(client, ctx, std::move(v)); },
        [](const auto& k) { return k.clock_entries(); },
        [](const auto& k) { return dvv::codec::metadata_size(k); });
    const auto svv = run<ServerVvSiblings<std::string>>(
        w,
        [](auto& k, std::size_t server, ActorId, const VersionVector& ctx,
           std::string v) { k.update(server, ctx, std::move(v)); },
        [](const auto& k) { return k.clock_entries(); },
        [](const auto& k) { return dvv::codec::metadata_size(k); });
    const auto dvv_r = run<DvvSiblings<std::string>>(
        w,
        [](auto& k, std::size_t server, ActorId, const VersionVector& ctx,
           std::string v) { k.update(server, ctx, std::move(v)); },
        [](const auto& k) { return k.clock_entries(); },
        [](const auto& k) { return dvv::codec::metadata_size(k); });
    const auto dset = run<DvvSet<std::string>>(
        w,
        [](auto& k, std::size_t server, ActorId, const VersionVector& ctx,
           std::string v) { k.update(server, ctx, std::move(v)); },
        [](const auto& k) { return k.clock_entries(); },
        [](const auto& k) { return dvv::codec::metadata_size(k); });

    auto emit = [&](const char* mech, const Row& row) {
      table.row({std::to_string(w), mech, std::to_string(row.peak_entries),
                 std::to_string(row.peak_meta_bytes),
                 std::to_string(row.merged_entries)});
    };
    emit("client-vv", cvv);
    emit("server-vv*", svv);
    emit("dvv", dvv_r);
    emit("dvvset", dset);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(*) server-vv is flat but UNSOUND under this workload — see E2/E8.\n");
  std::printf("shape check: client-vv peak entries ~= W (one per writer);\n");
  std::printf("dvv per-sibling cost <= dot + R entries; dvvset <= R entries total;\n");
  std::printf("after the reconciling write every bounded mechanism is back to O(R).\n");
  return 0;
}
