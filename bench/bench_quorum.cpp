// bench_quorum — client-observed quorum coordination cost
// (src/kv/coordinator.hpp).
//
// The question: what do R/W choice, message loss and partition length
// COST the client, now that a GET/PUT is a request state machine whose
// completion waits for real replies?  A workload of CONCURRENT
// coordinated reads and writes runs against a 6-server ring, one
// transport pump per issued operation, and every request's
// client-observed latency is measured in coordination ticks from issue
// to terminal outcome.  Swept axes:
//
//   transport   inline (synchronous: the zero-latency floor — every
//               request completes before the call returns) vs the
//               queued SimTransport (replies ride the same faulty
//               queues as replication);
//   R = W       1 (coordinator-local, Riak's default ack), 2 (majority
//               of 3), 3 (all);
//   drop rate   per-message loss — lost scatter or lost replies push
//               requests toward their deadline;
//   partition   a window of operations issued with the ring cut in
//               half — quorums larger than the reachable side cannot
//               complete until the heal.
//
// Reported per row: completion-outcome mix (quorum / timeout), degraded
// completions, latency ticks (mean, p99, max), and the engine's reply
// hygiene counters (late / duplicate / stale drops — nonzero whenever
// faults are on, proving the hygiene paths run under load).
//
// Output: table + BENCH_quorum.json (schema: {bench, seed, config,
// rows[]}).  Structural invariants are asserted; latency magnitudes are
// reported, not asserted.
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "kv/cluster.hpp"
#include "kv/coordinator.hpp"
#include "kv/mechanism.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::CoordOutcome;
using dvv::kv::DvvMechanism;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::util::Rng;

constexpr std::uint64_t kSeed = 20120716;
constexpr std::size_t kServers = 6;
constexpr std::size_t kReplication = 3;
constexpr std::size_t kKeys = 64;
constexpr std::size_t kOps = 2'000;
constexpr std::uint64_t kDeadlineTicks = 16;

struct Row {
  std::string transport;
  std::size_t quorum = 1;        // R = W
  double drop = 0.0;
  std::size_t partition_ops = 0; // ops issued while the ring is cut
  std::size_t requests = 0;      // reads + writes issued
  std::size_t completed_quorum = 0;
  std::size_t timeouts = 0;      // deadline (or shutdown-finalized)
  std::size_t degraded = 0;      // completed below quorum / fan-out
  double availability_pct = 0.0; // quorum completions / requests
  double latency_mean = 0.0;     // ticks, issue -> terminal
  double latency_p99 = 0.0;
  double latency_max = 0.0;
  std::size_t late_drops = 0;    // late + stale reply drops
  std::size_t dup_drops = 0;
};

ClusterConfig make_config(bool inline_transport, double drop,
                          std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.servers = kServers;
  cfg.replication = kReplication;
  cfg.vnodes = 32;
  cfg.transport.kind = inline_transport ? dvv::net::TransportKind::kInline
                                        : dvv::net::TransportKind::kSim;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  cfg.transport.sim.seed = seed;
  cfg.transport.sim.drop_probability = drop;
  cfg.transport.sim.duplicate_probability = 0.05;
  cfg.transport.sim.reorder_window = 2;
  cfg.transport.sim.auto_settle = false;  // requests stay in flight
  return cfg;
}

Row run_workload(bool inline_transport, std::size_t quorum, double drop,
                 std::size_t partition_ops) {
  Cluster<DvvMechanism> cluster(
      make_config(inline_transport, drop, kSeed ^ (quorum * 7919)), {});
  Rng rng(kSeed);

  Row row;
  row.transport = inline_transport ? "inline" : "sim";
  row.quorum = quorum;
  row.drop = drop;
  row.partition_ops = partition_ops;

  // The partition window sits in the middle of the run.
  const std::size_t cut_at = partition_ops == 0 ? kOps : kOps / 2;
  const std::size_t heal_at = cut_at + partition_ops;
  std::vector<std::vector<ReplicaId>> halves(2);
  for (ReplicaId r = 0; r < kServers; ++r) halves[r < kServers / 2 ? 0 : 1].push_back(r);

  std::uint64_t pumps = 0;
  std::map<std::uint64_t, std::uint64_t> issue_tick;  // id -> pump count
  dvv::util::Samples latency;

  // id -> is_read (the typed harvest needs to know which taker).
  std::map<std::uint64_t, bool> kind;

  const auto drain_completed = [&] {
    for (const std::uint64_t id : cluster.take_completed_requests()) {
      latency.add(static_cast<double>(pumps - issue_tick.at(id)));
      issue_tick.erase(id);
      const bool is_read = kind.at(id);
      kind.erase(id);
      CoordOutcome outcome;
      bool degraded = false;
      if (is_read) {
        const auto harvest = cluster.take_read_result(id);
        outcome = harvest.outcome;
        degraded = harvest.result.degraded;
      } else {
        const auto receipt = cluster.take_write_receipt(id);
        outcome = receipt.outcome;
        degraded = receipt.degraded;
      }
      if (outcome == CoordOutcome::kQuorum) {
        ++row.completed_quorum;
      } else {
        ++row.timeouts;
      }
      if (degraded) ++row.degraded;
    }
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    if (op == cut_at && partition_ops > 0) cluster.partition(halves, "bench");
    if (op == heal_at && partition_ops > 0) cluster.heal();

    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const auto pref = cluster.preference_list(key);
    const ReplicaId coordinator = pref[0];
    const auto ctx = cluster.get(key, coordinator).context;

    dvv::kv::WriteOptions wopts;
    wopts.write_quorum = quorum;
    wopts.deadline_ticks = kDeadlineTicks;
    const std::uint64_t wid =
        cluster.begin_write(key, coordinator, dvv::kv::client_actor(0), ctx,
                            "w" + std::to_string(op), pref, wopts);
    issue_tick[wid] = pumps;
    kind[wid] = false;
    ++row.requests;

    if (rng.chance(0.5)) {
      dvv::kv::ReadOptions ropts;
      ropts.deadline_ticks = kDeadlineTicks;
      const std::uint64_t rid =
          cluster.begin_read_at(key, coordinator, quorum, ropts);
      issue_tick[rid] = pumps;
      kind[rid] = true;
      ++row.requests;
    }
    drain_completed();  // inline transports complete everything here

    ++pumps;
    cluster.pump();
    drain_completed();
  }

  // Shutdown: heal, keep pumping until every request reached its
  // terminal state (the deadline bounds this), then account leftovers.
  cluster.heal();
  std::size_t guard = 0;
  while (!issue_tick.empty()) {
    ++pumps;
    cluster.pump();
    drain_completed();
    DVV_ASSERT_MSG(++guard < 10 * kDeadlineTicks + 1000,
                   "bench_quorum: requests failed to reach a terminal state");
  }

  row.availability_pct =
      100.0 * static_cast<double>(row.completed_quorum) /
      static_cast<double>(row.requests);
  row.latency_mean = latency.mean();
  row.latency_p99 = latency.p99();
  row.latency_max = latency.max();
  const auto& coord = cluster.coord_stats();
  row.late_drops = coord.late_replies_dropped + coord.stale_replies_dropped;
  row.dup_drops = coord.duplicate_replies_dropped;

  DVV_ASSERT_MSG(row.completed_quorum + row.timeouts == row.requests,
                 "every request must end in exactly one outcome");
  return row;
}

void write_json(const std::vector<Row>& rows) {
  std::FILE* f = std::fopen("BENCH_quorum.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_quorum.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"quorum\",\n  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"obs\": %s,\n",
               dvv::obs::registry().json_snapshot().c_str());
  std::fprintf(f,
               "  \"config\": {\"servers\": %zu, \"replication\": %zu, "
               "\"keys\": %zu, \"ops\": %zu, \"deadline_ticks\": %llu},\n"
               "  \"rows\": [\n",
               kServers, kReplication, kKeys, kOps,
               static_cast<unsigned long long>(kDeadlineTicks));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"transport\": \"%s\", \"quorum\": %zu, \"drop\": %.2f, "
        "\"partition_ops\": %zu, \"requests\": %zu, "
        "\"completed_quorum\": %zu, \"timeouts\": %zu, \"degraded\": %zu, "
        "\"availability_pct\": %.2f, \"latency_ticks_mean\": %s, "
        "\"latency_ticks_p99\": %s, \"latency_ticks_max\": %s, "
        "\"late_reply_drops\": %zu, \"dup_reply_drops\": %zu}%s\n",
        r.transport.c_str(), r.quorum, r.drop, r.partition_ops, r.requests,
        r.completed_quorum, r.timeouts, r.degraded, r.availability_pct,
        // json_number: an all-timeout row has EMPTY latency samples, and
        // the accumulators now answer NaN (not 0.0) — render null, since
        // bare nan is invalid JSON.
        dvv::util::json_number(r.latency_mean, 3).c_str(),
        dvv::util::json_number(r.latency_p99, 1).c_str(),
        dvv::util::json_number(r.latency_max, 1).c_str(), r.late_drops,
        r.dup_drops, i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  // Metrics on for the whole run (behavior-invariant by the obs twin
  // property) so the embedded registry snapshot holds real numbers.
  dvv::obs::set_metrics_enabled(true);
  std::printf("==== quorum: client-observed latency/availability vs R/W, "
              "drop rate, partition ====\n");
  std::printf("%zu concurrent ops, %zu servers, replication %zu, deadline %llu "
              "ticks, seed %llu\n\n",
              kOps, kServers, kReplication,
              static_cast<unsigned long long>(kDeadlineTicks),
              static_cast<unsigned long long>(kSeed));

  std::vector<Row> rows;
  dvv::util::TextTable table;
  table.header({"transport", "R=W", "drop", "cut ops", "avail %", "timeouts",
                "degraded", "lat mean", "lat p99", "late drops"});

  // Inline floor: every quorum completes synchronously at zero ticks.
  for (const std::size_t q : {1u, 2u, 3u}) {
    rows.push_back(run_workload(/*inline=*/true, q, 0.0, 0));
  }
  // Queued transport: drop-rate sweep at each quorum.
  for (const std::size_t q : {1u, 2u, 3u}) {
    for (const double drop : {0.0, 0.05, 0.15}) {
      rows.push_back(run_workload(/*inline=*/false, q, drop, 0));
    }
  }
  // Partition-duration sweep at majority quorum under light loss.
  for (const std::size_t cut : {60u, 250u, 1000u}) {
    rows.push_back(run_workload(/*inline=*/false, 2, 0.05, cut));
  }

  for (const Row& r : rows) {
    table.row({r.transport, std::to_string(r.quorum), dvv::util::fixed(r.drop, 2),
               std::to_string(r.partition_ops),
               dvv::util::fixed(r.availability_pct, 2),
               std::to_string(r.timeouts), std::to_string(r.degraded),
               dvv::util::fixed(r.latency_mean, 2),
               dvv::util::fixed(r.latency_p99, 1),
               std::to_string(r.late_drops)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Structural invariants.
  for (const Row& r : rows) {
    if (r.transport == "inline") {
      DVV_ASSERT_MSG(r.timeouts == 0 && r.availability_pct == 100.0,
                     "inline coordination must complete everything in place");
      DVV_ASSERT_MSG(r.latency_max == 0.0,
                     "inline requests terminate before the call returns");
    }
  }
  const auto find_row = [&](std::size_t q, double drop, std::size_t cut) -> const Row& {
    for (const Row& r : rows) {
      if (r.transport == "sim" && r.quorum == q && r.drop == drop &&
          r.partition_ops == cut) {
        return r;
      }
    }
    DVV_ASSERT_MSG(false, "row not found");
    return rows.front();
  };
  DVV_ASSERT_MSG(find_row(3, 0.15, 0).timeouts > 0,
                 "heavy loss at R=W=3 must push requests into their deadline");
  DVV_ASSERT_MSG(find_row(1, 0.15, 0).timeouts == 0,
                 "W=1 completes at the coordinator regardless of loss");
  DVV_ASSERT_MSG(find_row(3, 0.15, 0).availability_pct <
                     find_row(3, 0.0, 0).availability_pct + 1e-9,
                 "loss must not improve availability");
  DVV_ASSERT_MSG(find_row(2, 0.05, 1000).timeouts >
                     find_row(2, 0.05, 60).timeouts,
                 "a longer partition must time out more quorum-2 requests");
  DVV_ASSERT_MSG(find_row(3, 0.15, 0).late_drops > 0,
                 "replies outliving their requests must hit the hygiene path");

  write_json(rows);
  std::printf("wrote BENCH_quorum.json (%zu rows)\n", rows.size());
  return 0;
}
