// bench_server — dvvd end-to-end throughput vs shard count.
//
// The tentpole claim of the shard-per-thread refactor is that adding
// execution shards adds throughput: client I/O, request execution and
// inter-replica traffic all ride the same per-shard serial domains, so
// a second shard is a second independent lane (no shared locks to
// contend).  This bench measures the whole stack — real sockets, real
// frames, the real store — for shard counts {1, 2, 4}:
//
//   * one server per shard count (8 replicas, ephemeral port);
//   * one pipelined client THREAD per shard (window of 32 in-flight
//     PUTs, token-blind — coordinator fan-out and replication run for
//     every op), each on its own connection and key range;
//   * per-request latency from send to matching FIFO response,
//     exact p50/p99 via util::Samples.
//
// Output: a table + BENCH_server.json (schema: {bench, hardware_threads,
// rows[{shards, clients, ops, wall_ms, kops_per_sec, p50_us, p99_us,
// gate_eligible}]}).  `gate_eligible` is the honesty bit: scaling can
// only show up when the host actually has cores for the shard threads
// AND the client threads, so each row carries
// hardware_concurrency >= 2 * shards and the CI perf gate (4T >= 2x 1T)
// fires only when the 4-shard row is eligible.  On a 1-core container
// every row says false and the gate self-disarms; the numbers are
// still recorded.
//
// Wall-clock use is deliberate and confined to bench/ (the src/ lint
// forbids it in the library): this measures real elapsed time on real
// sockets.
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "kv/store.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "util/assert.hpp"
#include "util/fmt.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::size_t kServers = 8;
constexpr std::size_t kOpsPerClient = 4'000;
constexpr std::size_t kPipelineWindow = 32;

using Clock = std::chrono::steady_clock;

struct Row {
  std::size_t shards = 0;
  std::size_t clients = 0;
  std::size_t ops = 0;
  double wall_ms = 0.0;
  double kops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  bool gate_eligible = false;
};

/// One pipelined client: keeps `kPipelineWindow` PUTs in flight on a
/// single connection, recording send->response latency per request.
/// FIFO response order (a server guarantee, asserted via the id echo)
/// makes a deque of send timestamps sufficient.  Returns false on any
/// protocol violation.
bool run_client(std::uint16_t port, std::size_t client_index,
                std::vector<double>& latencies_us) {
  dvv::server::Client client(port);
  std::deque<std::pair<std::uint64_t, Clock::time_point>> in_flight;
  std::uint64_t next_id = 1;
  const std::string key_prefix = "bench-" + std::to_string(client_index) + "-";
  latencies_us.reserve(kOpsPerClient);

  while (latencies_us.size() < kOpsPerClient) {
    while (in_flight.size() < kPipelineWindow && next_id <= kOpsPerClient) {
      const std::uint64_t id = next_id++;
      in_flight.emplace_back(id, Clock::now());
      client.send_put(id, key_prefix + std::to_string(id % 64), "", "payload",
                      client_index);
    }
    dvv::server::Response resp;
    if (!client.read_response(/*is_get=*/false, resp)) return false;
    const auto [id, sent] = in_flight.front();
    in_flight.pop_front();
    if (resp.request_id != id ||
        resp.status != dvv::server::ResponseStatus::kOk) {
      return false;
    }
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - sent)
            .count());
  }
  return in_flight.empty();
}

Row bench_shards(std::size_t shards) {
  dvv::kv::StoreConfig config;
  config.servers = kServers;
  config.transport.kind = dvv::net::TransportKind::kThreaded;
  config.transport.threaded.shards = shards;
  const std::unique_ptr<dvv::kv::Store> store =
      dvv::kv::make_store("dvv", config);
  DVV_ASSERT(store != nullptr);
  dvv::server::Server server(*store, dvv::server::ServerConfig{});
  server.start();

  const std::size_t clients = shards;
  std::vector<std::vector<double>> latencies(clients);
  std::vector<char> ok(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ok[c] = run_client(server.port(), c, latencies[c]) ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  server.stop();

  dvv::util::Samples all;
  all.reserve(clients * kOpsPerClient);
  for (std::size_t c = 0; c < clients; ++c) {
    DVV_ASSERT_MSG(ok[c] != 0, "bench client saw a failed round trip");
    DVV_ASSERT_MSG(latencies[c].size() == kOpsPerClient,
                   "bench client lost responses");
    for (const double us : latencies[c]) all.add(us);
  }

  Row row;
  row.shards = shards;
  row.clients = clients;
  row.ops = clients * kOpsPerClient;
  row.wall_ms = wall_ms;
  row.kops_per_sec = static_cast<double>(row.ops) / wall_ms;
  row.p50_us = all.p50();
  row.p99_us = all.p99();
  row.gate_eligible = std::thread::hardware_concurrency() >= 2 * shards;
  return row;
}

void write_json(const std::vector<Row>& rows) {
  std::FILE* f = std::fopen("BENCH_server.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"server\",\n  \"hardware_threads\": %u,\n"
               "  \"config\": {\"servers\": %zu, \"ops_per_client\": %zu, "
               "\"pipeline_window\": %zu},\n  \"rows\": [\n",
               std::thread::hardware_concurrency(), kServers, kOpsPerClient,
               kPipelineWindow);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"clients\": %zu, \"ops\": %zu, "
                 "\"wall_ms\": %.3f, \"kops_per_sec\": %.1f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"gate_eligible\": %s}%s\n",
                 r.shards, r.clients, r.ops, r.wall_ms, r.kops_per_sec,
                 r.p50_us, r.p99_us, r.gate_eligible ? "true" : "false",
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("==== dvvd: end-to-end throughput vs shard count ====\n");
  std::printf(
      "%zu replicas, 1 pipelined client thread per shard (window %zu), "
      "%zu PUTs per client; host has %u hardware threads\n\n",
      kServers, kPipelineWindow, kOpsPerClient,
      std::thread::hardware_concurrency());

  std::vector<Row> rows;
  dvv::util::TextTable table;
  table.header({"shards", "clients", "kops/s", "p50 us", "p99 us", "gate"});
  for (const std::size_t shards : {1u, 2u, 4u}) {
    rows.push_back(bench_shards(shards));
    const Row& r = rows.back();
    table.row({std::to_string(r.shards), std::to_string(r.clients),
               dvv::util::fixed(r.kops_per_sec, 1),
               dvv::util::fixed(r.p50_us, 1), dvv::util::fixed(r.p99_us, 1),
               r.gate_eligible ? "eligible" : "ineligible"});
  }
  std::printf("%s\n", table.to_string().c_str());

  write_json(rows);
  std::printf("wrote BENCH_server.json (%zu rows)\n", rows.size());
  return 0;
}
