// bench_oracle_agreement — experiment E9: "DVV can precisely track
// causality among versions concurrently created by multiple clients",
// validated statistically.
//
// For every mechanism, runs N seeded contentious traces in lockstep with
// the causal-history oracle (continuous per-operation audits) and
// reports how many traces were tracked exactly, plus the aggregate
// anomaly counts.  This is the repository's empirical soundness table:
// DVV and DVVSet must be 10/10 exact; the baselines fail in their
// documented ways.
#include <cstdio>
#include <string>
#include <vector>

#include "kv/mechanism.hpp"
#include "oracle/audit.hpp"
#include "util/fmt.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::ClusterConfig;
using dvv::oracle::mirrored_run;
using dvv::workload::WorkloadSpec;

const std::vector<std::uint64_t> kSeeds{1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

WorkloadSpec spec(std::uint64_t seed, double replicate_probability,
                  bool crashes = false) {
  WorkloadSpec s;
  s.keys = 12;
  s.zipf_skew = 0.99;
  s.clients = 16;
  s.operations = 1200;
  s.read_before_write = 0.6;
  s.replicate_probability = replicate_probability;
  s.anti_entropy_every = 40;
  if (crashes) {
    s.fail_probability = 0.03;
    s.recover_probability = 0.06;
    s.servers = 6;
    s.hinted_handoff = true;
  }
  s.seed = seed;
  return s;
}

template <typename M>
void run_row(dvv::util::TextTable& table, const char* name,
             double replicate_probability, M mechanism, bool crashes = false) {
  std::size_t exact = 0;
  std::uint64_t lost = 0, false_sib = 0, checked = 0;
  for (const auto seed : kSeeds) {
    const auto run = mirrored_run(spec(seed, replicate_probability, crashes),
                                  config(), mechanism);
    exact += run.report.exact() ? 1u : 0u;
    lost += run.report.lost_updates();
    false_sib += run.report.false_siblings();
    checked += run.report.values_checked;
  }
  table.row({name,
             crashes ? "crashy" : dvv::util::fixed(replicate_probability, 1),
             std::to_string(exact) + "/" + std::to_string(kSeeds.size()),
             std::to_string(lost), std::to_string(false_sib),
             std::to_string(checked)});
}

}  // namespace

int main() {
  std::printf("==== E9: mechanism-vs-oracle agreement over %zu seeded traces ====\n",
              kSeeds.size());
  std::printf("6 servers, R=3, 12 hot keys, 1200 writes/trace, 40%% blind\n");
  std::printf("writers, continuous per-op audits vs causal histories\n\n");

  dvv::util::TextTable table;
  table.header({"mechanism", "repl. p", "exact traces", "lost", "false sib",
                "values checked"});

  // Partial replication: the hard regime (reads can miss writes).
  run_row(table, "dvv", 0.6, dvv::kv::DvvMechanism{});
  run_row(table, "dvvset", 0.6, dvv::kv::DvvSetMechanism{});
  run_row(table, "vve (WinFS)", 0.6, dvv::kv::VveMechanism{});
  run_row(table, "client-vv", 0.6, dvv::kv::ClientVvMechanism{});
  run_row(table, "server-vv", 0.6, dvv::kv::ServerVvMechanism{});
  // Full replication: read-your-writes holds; client-vv recovers,
  // server-vv still fails (its flaw needs only racing clients).
  run_row(table, "dvv", 1.0, dvv::kv::DvvMechanism{});
  run_row(table, "dvvset", 1.0, dvv::kv::DvvSetMechanism{});
  run_row(table, "client-vv", 1.0, dvv::kv::ClientVvMechanism{});
  run_row(table, "client-vv cap=4", 1.0, dvv::kv::pruned_client_vv(4));
  run_row(table, "server-vv", 1.0, dvv::kv::ServerVvMechanism{});
  // Crash regime: fail-stop outages + hinted handoff.  Sound clocks must
  // not care where the bytes were parked.
  run_row(table, "dvv", 1.0, dvv::kv::DvvMechanism{}, /*crashes=*/true);
  run_row(table, "dvvset", 1.0, dvv::kv::DvvSetMechanism{}, /*crashes=*/true);
  run_row(table, "server-vv", 1.0, dvv::kv::ServerVvMechanism{}, /*crashes=*/true);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape check: dvv/dvvset 10/10 exact in BOTH regimes (the paper's\n");
  std::printf("precision claim); client-vv is exact only with read-your-writes\n");
  std::printf("(full replication) and loses data under partial replication via\n");
  std::printf("counter reuse — the historical Riak bug DVV fixed; server-vv\n");
  std::printf("fails everywhere clients race; pruning fails by design.\n");
  return 0;
}
