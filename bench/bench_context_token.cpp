// bench_context_token — the paper's headline bounded-size claim at the
// WIRE-VISIBLE public API layer, plus the facade dispatch cost.
//
// Earlier benches (bench_metadata_size, E5) measure stored clock sizes
// inside the kernels.  After the api_redesign, what a client actually
// carries between a GET and a PUT is the opaque CausalToken — header,
// payload and checksum — so this bench sweeps clients × replicas ×
// interleaving depth per mechanism and reports:
//
//   * token bytes      what every PUT uploads (the paper's metadata
//                      claim, as the client experiences it: DVV/DVVSet
//                      stay flat as the writer population grows —
//                      bounded by the replication degree — while
//                      client-VV tokens grow with clients and causal
//                      histories with total events);
//   * encode/decode ns what minting and strictly validating a token
//                      costs the server per request (strict decode
//                      includes the CRC walk and the canonical
//                      re-encode seal);
//   * dispatch         a fixed GET/PUT workload driven through the
//                      type-erased kv::Store vs the templated
//                      Cluster<M> directly — the facade's virtual hop
//                      must stay within bench noise on the hot path.
//
// Output: table + BENCH_context_token.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "kv/session.hpp"
#include "kv/store.hpp"
#include "kv/token.hpp"
#include "obs/obs.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::CausalToken;
using dvv::kv::MechanismId;
using dvv::kv::Session;
using dvv::kv::Store;
using dvv::kv::StoreConfig;
using dvv::util::fixed;

constexpr std::uint64_t kSeed = 0x70CE2;

struct Row {
  std::string mechanism;
  std::size_t replicas = 0;
  std::size_t clients = 0;
  std::size_t depth = 0;
  std::size_t token_bytes = 0;
  double encode_ns = 0.0;
  double decode_ns = 0.0;
};

StoreConfig config_for(std::size_t replicas) {
  StoreConfig config;
  config.servers = replicas;
  config.replication = replicas;
  config.vnodes = 32;
  return config;
}

[[nodiscard]] double ns_since(std::chrono::steady_clock::time_point start,
                              std::size_t iters) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
             .count() /
         static_cast<double>(iters);
}

/// One hot key, `clients` sessions racing for `depth` rounds: each
/// round every session GETs (token snapshot), then every session PUTs —
/// so within a round the writes are genuinely concurrent (each context
/// excludes the others) and siblings interleave round over round.
CausalToken grow_hot_key(Store& store, std::size_t clients, std::size_t depth) {
  const dvv::kv::Key key = "hot";
  std::vector<Session> sessions;
  sessions.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    sessions.emplace_back(dvv::kv::client_actor(c), store);
  }
  for (std::size_t round = 0; round < depth; ++round) {
    for (auto& s : sessions) (void)s.get(key);
    for (std::size_t c = 0; c < clients; ++c) {
      (void)sessions[c].put(key, "r" + std::to_string(round) + "c" +
                                     std::to_string(c));
    }
  }
  return store.get(key).token;
}

/// Times token encode and strict decode for mechanism M's Context type
/// (the typed token API; the store-facing workload above stayed
/// type-erased).  Decode includes the full strictness bill: CRC,
/// structure, canonical re-encode.
template <typename M>
void time_token(const CausalToken& token, MechanismId id, Row& row) {
  using Context = typename M::Context;
  constexpr std::size_t kIters = 4000;
  Context ctx;
  if (!dvv::kv::decode_token(token, id, ctx)) {
    std::fprintf(stderr, "bench: own token failed to decode\n");
    return;
  }
  auto start = std::chrono::steady_clock::now();
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < kIters; ++i) {
    bytes += dvv::kv::encode_token(id, ctx).size();
  }
  row.encode_ns = ns_since(start, kIters);
  start = std::chrono::steady_clock::now();
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < kIters; ++i) {
    Context out;
    decoded += dvv::kv::decode_token(token, id, out) ? 1 : 0;
  }
  row.decode_ns = ns_since(start, kIters);
  if (bytes == 0 || decoded != kIters) std::fprintf(stderr, "bench: bad run\n");
}

template <typename M>
Row run_cell(const char* name, std::size_t replicas, std::size_t clients,
             std::size_t depth) {
  Row row;
  row.mechanism = name;
  row.replicas = replicas;
  row.clients = clients;
  row.depth = depth;
  const auto store = dvv::kv::make_store(name, config_for(replicas));
  const CausalToken token = grow_hot_key(*store, clients, depth);
  row.token_bytes = token.size();
  time_token<M>(token, store->mechanism_id(), row);
  return row;
}

/// Dispatch comparison: the identical seeded GET/PUT mix through the
/// templated Cluster<M> (direct calls, contexts) and through kv::Store
/// (virtual calls, tokens).  The facade pays one virtual hop plus the
/// token encode/decode per op — the bench prints both so the "within
/// noise" target is checkable against run-to-run variance.
struct DispatchResult {
  double direct_ns = 0.0;
  double facade_ns = 0.0;
  /// Token work the facade pair genuinely performs that the direct path
  /// does not: one mint (GET) + one strict decode (PUT), measured on a
  /// representative token from the same workload.  facade - direct -
  /// token_ns is the residual — the type-erasure hop itself.
  double token_ns = 0.0;
};

constexpr std::size_t kDispatchOps = 8000;
constexpr std::size_t kDispatchKeys = 32;

template <typename Driver>
double time_workload(Driver&& op) {
  dvv::util::Rng rng(kSeed);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kDispatchOps; ++i) {
    const dvv::kv::Key key = "k" + std::to_string(rng.index(kDispatchKeys));
    op(key, i);
  }
  return ns_since(start, kDispatchOps);
}

DispatchResult run_dispatch() {
  DispatchResult out;
  {
    dvv::kv::ClusterConfig config;
    config.servers = 5;
    config.replication = 3;
    config.vnodes = 32;
    dvv::kv::Cluster<dvv::kv::DvvMechanism> cluster(config, {});
    dvv::kv::ClientSession<dvv::kv::DvvMechanism> session(
        dvv::kv::client_actor(0), cluster);
    out.direct_ns = time_workload([&](const dvv::kv::Key& key, std::size_t i) {
      (void)session.get(key);
      (void)session.put(key, "v" + std::to_string(i));
    });
  }
  {
    StoreConfig config;
    config.servers = 5;
    config.replication = 3;
    config.vnodes = 32;
    const auto store = dvv::kv::make_store("dvv", config);
    Session session(dvv::kv::client_actor(0), *store);
    out.facade_ns = time_workload([&](const dvv::kv::Key& key, std::size_t i) {
      (void)session.get(key);
      (void)session.put(key, "v" + std::to_string(i));
    });
    // Attribute the gap: a pair costs one token mint + one strict decode.
    Row probe;
    time_token<dvv::kv::DvvMechanism>(session.token_for("k0"),
                                      store->mechanism_id(), probe);
    out.token_ns = probe.encode_ns + probe.decode_ns;
  }
  return out;
}

void write_json(const std::vector<Row>& rows,
                const std::vector<DispatchResult>& dispatch) {
  std::FILE* f = std::fopen("BENCH_context_token.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_context_token.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"context_token\",\n  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"obs\": %s,\n", dvv::obs::registry().json_snapshot().c_str());
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"mechanism\": \"%s\", \"replicas\": %zu, \"clients\": "
                 "%zu, \"depth\": %zu, \"token_bytes\": %zu, \"encode_ns\": "
                 "%.1f, \"decode_ns\": %.1f}%s\n",
                 r.mechanism.c_str(), r.replicas, r.clients, r.depth,
                 r.token_bytes, r.encode_ns, r.decode_ns,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"dispatch\": [\n");
  for (std::size_t i = 0; i < dispatch.size(); ++i) {
    std::fprintf(f,
                 "    {\"direct_ns_per_op\": %.1f, \"facade_ns_per_op\": %.1f, "
                 "\"facade_over_direct\": %.3f, \"token_ns\": %.1f, "
                 "\"dispatch_residual_ns\": %.1f}%s\n",
                 dispatch[i].direct_ns, dispatch[i].facade_ns,
                 dispatch[i].facade_ns / dispatch[i].direct_ns,
                 dispatch[i].token_ns,
                 dispatch[i].facade_ns - dispatch[i].direct_ns -
                     dispatch[i].token_ns,
                 i + 1 == dispatch.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  // Metrics on for the whole run (behavior-invariant by the obs twin
  // property) so the embedded registry snapshot holds real numbers.
  dvv::obs::set_metrics_enabled(true);
  std::printf("==== context tokens: wire-visible size + codec cost per "
              "mechanism ====\n");
  std::printf("one hot key; each of C clients GETs then PUTs, for D rounds "
              "(racing within a round);\n");
  std::printf("token = header + context payload + CRC, strict decode includes "
              "the canonical re-encode seal\n\n");

  std::vector<Row> rows;
  dvv::util::TextTable table;
  table.header({"mechanism", "replicas", "clients", "depth", "token B",
                "encode ns", "decode ns"});
  for (const std::size_t replicas : {3u, 5u}) {
    for (const std::size_t clients : {1u, 4u, 16u, 64u}) {
      for (const std::size_t depth : {1u, 4u}) {
        rows.push_back(run_cell<dvv::kv::DvvMechanism>("dvv", replicas, clients,
                                                       depth));
        rows.push_back(run_cell<dvv::kv::DvvSetMechanism>("dvvset", replicas,
                                                          clients, depth));
        rows.push_back(run_cell<dvv::kv::ServerVvMechanism>("server-vv",
                                                            replicas, clients,
                                                            depth));
        rows.push_back(run_cell<dvv::kv::ClientVvMechanism>("client-vv",
                                                            replicas, clients,
                                                            depth));
        rows.push_back(run_cell<dvv::kv::VveMechanism>("vve", replicas, clients,
                                                       depth));
        rows.push_back(run_cell<dvv::kv::HistoryMechanism>("causal-history",
                                                           replicas, clients,
                                                           depth));
      }
    }
  }
  for (const Row& r : rows) {
    table.row({r.mechanism, std::to_string(r.replicas),
               std::to_string(r.clients), std::to_string(r.depth),
               std::to_string(r.token_bytes), fixed(r.encode_ns, 0),
               fixed(r.decode_ns, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: dvv/dvvset/server-vv token bytes are flat in "
              "clients (bounded by the\nreplica count); client-vv tokens grow "
              "with clients, causal-history with total events.\n\n");

  // Three interleaved dispatch runs so run-to-run noise is visible next
  // to the facade-vs-direct gap.
  std::printf("==== facade dispatch cost (GET+PUT pairs, dvv, 5 servers) "
              "====\n");
  std::vector<DispatchResult> dispatch;
  for (int run = 0; run < 3; ++run) {
    dispatch.push_back(run_dispatch());
    const DispatchResult& d = dispatch.back();
    std::printf("run %d: direct %.0f ns/op, facade %.0f ns/op (x%.3f); token "
                "mint+decode %.0f ns -> type-erasure residual %.0f ns/op\n",
                run, d.direct_ns, d.facade_ns, d.facade_ns / d.direct_ns,
                d.token_ns, d.facade_ns - d.direct_ns - d.token_ns);
  }
  std::printf("(the residual is the virtual hop itself — the target that must "
              "sit within run-to-run noise;\nthe token work is the opacity "
              "contract's real price and is reported separately above)\n");

  write_json(rows, dispatch);
  std::printf("\nwrote BENCH_context_token.json (%zu rows)\n", rows.size());
  return 0;
}
