// bench_transport — the cost of the message layer (src/net).
//
// Two questions:
//
//   overhead     what does routing replication through typed, codec-
//                serialized messages cost against direct calls doing
//                the SAME protocol?  Three variants run the same
//                seeded write workload: direct calls (the quorum
//                engine driven by hand — local put, per-target merge +
//                ack bookkeeping, sealed receipt — with the message
//                layer removed), the inline transport (typed envelopes,
//                synchronous), and the queued SimTransport (plus
//                encode/decode and queue churn).  All three do the
//                identical protocol work, so overhead_pct isolates the
//                message path itself — envelopes, codec framing,
//                pooling, dispatch — which is exactly the number the
//                CI perf-smoke leg budgets.  Final states are asserted
//                byte-identical across all three.
//
//   partition    what does a partition COST after it heals?  A chaos
//                workload runs with the ring cut for a sweep of
//                durations; after heal, the digest anti-entropy pass
//                repairs the divergence.  Reported: keys shipped and
//                repair wire bytes vs partition length — the
//                convergence bill a longer outage runs up.
//
// Output: tables + BENCH_transport.json (schema: {bench, seed, config,
// rows[]}, rows tagged by section).  Structural invariants are
// asserted; wall-clock numbers are reported, not asserted.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/coordinator.hpp"
#include "kv/mechanism.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::util::Rng;

constexpr std::uint64_t kSeed = 20120716;
constexpr std::size_t kServers = 6;
constexpr std::size_t kReplication = 3;
constexpr std::size_t kKeys = 64;
constexpr std::size_t kOverheadOps = 30'000;
constexpr std::size_t kPartitionOps = 2'000;
constexpr std::size_t kPartitionKeys = 512;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

ClusterConfig base_config(dvv::net::TransportKind kind) {
  ClusterConfig cfg;
  cfg.servers = kServers;
  cfg.replication = kReplication;
  cfg.vnodes = 32;
  cfg.transport.kind = kind;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  cfg.transport.sim.auto_settle = false;
  return cfg;
}

struct Row {
  std::string section;
  std::string variant;
  std::size_t ops = 0;
  double wall_ms = 0.0;
  double kops_per_sec = 0.0;
  double overhead_pct = 0.0;
  std::size_t partition_ops = 0;    // partition section
  std::size_t keys_shipped = 0;
  std::size_t repair_wire_bytes = 0;
  std::size_t partition_drops = 0;
};

/// Digest of the whole cluster's data state (overhead variants must end
/// byte-identical).
std::uint64_t cluster_digest(Cluster<DvvMechanism>& cluster) {
  std::uint64_t acc = 0;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      dvv::codec::Writer w;
      dvv::codec::encode(w, *cluster.replica(r).find(key));
      acc = dvv::sync::combine(
          acc, dvv::sync::hash_bytes(std::span<const std::byte>(w.buffer())));
    }
  }
  return acc;
}

/// The shared write workload: seeded RMW puts at each key's slot-0
/// coordinator with full preference fan-out.  `mode` 0 = direct calls
/// (the same coordinated-write protocol — engine bookkeeping, acks,
/// sealed receipt — with merges as plain function calls and no message
/// layer), 1 = cluster.put (whatever transport the cluster carries;
/// pumped when queued).
std::uint64_t run_writes(Cluster<DvvMechanism>& cluster, std::size_t ops,
                         int mode) {
  Rng rng(kSeed);
  const DvvMechanism& mech = cluster.mechanism();
  // Mode 0's own request engine: the protocol work Cluster::begin_write
  // does (start_write / per-target ack / seal / harvest), minus the
  // transport underneath it.
  dvv::kv::QuorumCoordinator<DvvMechanism> engine;
  std::string scratch;  // the one shared fan-out encode begin_write does
  for (std::size_t i = 0; i < ops; ++i) {
    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const auto pref = cluster.preference_list(key);
    const ReplicaId coordinator = pref[0];
    const auto ctx = cluster.get(key, coordinator).context;
    const std::string value = "v" + std::to_string(i);
    if (mode == 0) {
      auto& coord = cluster.replica(coordinator);
      coord.put(mech, key, coordinator, dvv::kv::client_actor(0), ctx, value);
      dvv::kv::PutReceipt base;
      base.coordinator = coordinator;
      base.targets = pref.size() - 1;
      const std::uint64_t id = engine.start_write(std::move(base), {});
      (void)engine.on_write_ack(id, coordinator);
      const auto* fresh = coord.find(key);
      dvv::kv::Replica<DvvMechanism>::encode_state_into(*fresh, scratch);
      for (const ReplicaId r : pref) {
        if (r == coordinator) continue;
        dvv::kv::PutReceipt& receipt = engine.write_receipt(id);
        receipt.replication_bytes += scratch.size();
        ++receipt.replicated_to;
        cluster.replica(r).merge_key(mech, key, *fresh);
        (void)engine.on_write_ack(id, r);
      }
      (void)engine.seal_write_quorum(id);
      (void)engine.finalize(id);
      const dvv::kv::PutReceipt receipt = engine.take_write(id);
      DVV_ASSERT_MSG(receipt.acks() == pref.size(),
                     "direct-calls protocol twin must see every ack");
    } else {
      cluster.put(key, coordinator, dvv::kv::client_actor(0), ctx, value, pref);
      cluster.pump_all();  // no-op on inline; drains the queued variant
    }
  }
  return cluster_digest(cluster);
}

/// One timed pass of a variant (fresh cluster, fixed seed).
double time_variant(const std::string& variant, std::uint64_t* digest_out) {
  const auto kind = variant == "sim-queued" ? dvv::net::TransportKind::kSim
                                            : dvv::net::TransportKind::kInline;
  const int mode = variant == "direct-calls" ? 0 : 1;
  Cluster<DvvMechanism> cluster(base_config(kind), {});
  const auto start = std::chrono::steady_clock::now();
  *digest_out = run_writes(cluster, kOverheadOps, mode);
  return ms_since(start);
}

/// Repetitions per overhead variant.  The variants are INTERLEAVED —
/// every round times each variant once, in order — and the reported
/// wall time is the per-variant MINIMUM across rounds: on a shared /
/// noisy host the minimum is the least-perturbed estimate of the true
/// cost (every slower run is the same work plus scheduler
/// interference), and interleaving exposes all variants to the same
/// noise weather instead of letting one variant soak a quiet spell.
/// Each repetition rebuilds its cluster from scratch and must produce
/// the identical digest.
constexpr int kRepeats = 7;

/// All four overhead rows, interleaved and min-reduced.  The
/// metrics-on twin runs with the obs registry enabled and the flight
/// recorder armed; every variant's digest must match the direct run
/// (byte-identical final states), asserted per repetition.
std::vector<Row> bench_overhead_rows() {
  const std::vector<std::string> variants = {
      "direct-calls", "inline-transport", "sim-queued", "inline-metrics-on"};
  std::vector<double> best(variants.size(), 0.0);
  std::uint64_t digest = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const bool metrics_on = variants[v] == "inline-metrics-on";
      if (metrics_on) {
        dvv::obs::set_metrics_enabled(true);
        dvv::obs::flight().configure(4096);
      }
      std::uint64_t d = 0;
      const double wall = time_variant(variants[v], &d);
      if (metrics_on) {
        dvv::obs::set_metrics_enabled(false);
        dvv::obs::flight().configure(0);
      }
      if (rep == 0 && v == 0) {
        digest = d;
      } else {
        DVV_ASSERT_MSG(d == digest,
                       "every overhead variant must end byte-identical");
      }
      if (rep == 0 || wall < best[v]) best[v] = wall;
    }
  }
  std::vector<Row> rows;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    Row row;
    row.section = "overhead";
    row.variant = variants[v];
    row.ops = kOverheadOps;
    row.wall_ms = best[v];
    row.kops_per_sec = static_cast<double>(kOverheadOps) / row.wall_ms;
    // direct-calls is the baseline; the metrics-on twin reports its
    // delta against the metrics-OFF inline run (the obs cost claim).
    const double base = variants[v] == "inline-metrics-on" ? best[1] : best[0];
    row.overhead_pct =
        v == 0 ? 0.0 : 100.0 * (row.wall_ms - base) / base;
    rows.push_back(row);
  }
  return rows;
}

/// The single-replica roof: the same seeded RMW loop against ONE
/// replica — no fan-out, no quorum engine, no transport.  This is the
/// mechanism + storage ceiling that every message-path improvement
/// chases; reported as its own row so the overhead table has an
/// absolute yardstick, not just ratios.
Row bench_roof() {
  double best = 0.0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    Cluster<DvvMechanism> cluster(base_config(dvv::net::TransportKind::kInline),
                                  {});
    auto& replica = cluster.replica(0);
    const DvvMechanism& mech = cluster.mechanism();
    Rng rng(kSeed);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kOverheadOps; ++i) {
      const Key key = "key-" + std::to_string(rng.index(kKeys));
      const auto ctx = cluster.get(key, 0).context;
      replica.put(mech, key, 0, dvv::kv::client_actor(0), ctx,
                  "v" + std::to_string(i));
    }
    const double wall = ms_since(start);
    if (rep == 0 || wall < best) best = wall;
  }
  Row row;
  row.section = "roof";
  row.variant = "single-replica-direct";
  row.ops = kOverheadOps;
  row.wall_ms = best;
  row.kops_per_sec = static_cast<double>(kOverheadOps) / best;
  return row;
}

/// Sum of the net.alloc.* miss counters — what the message hot path
/// took from the global allocator while the registry was live.
std::uint64_t net_alloc_total() {
  return dvv::obs::registry().counter_value("net.alloc.messages") +
         dvv::obs::registry().counter_value("net.alloc.envelopes") +
         dvv::obs::registry().counter_value("net.alloc.encode_buffers");
}

/// The zero-allocation claim, asserted rather than assumed: one more
/// sim-queued pass (the variant that actually exercises the encode
/// pools) with the registry live.  The pools are warm from the timed
/// repetitions, so the miss hooks must record ≈0 — any growth here
/// means a send path fell off the pooled fast path.
void audit_steady_state_allocs() {
  dvv::obs::set_metrics_enabled(true);
  const std::uint64_t before = net_alloc_total();
  std::uint64_t digest = 0;
  (void)time_variant("sim-queued", &digest);
  const std::uint64_t after = net_alloc_total();
  dvv::obs::set_metrics_enabled(false);
  DVV_ASSERT_MSG(after - before <= 8,
                 "message hot path must not allocate at steady state");
  std::printf("steady-state alloc audit: %llu pool misses over %zu ops\n\n",
              static_cast<unsigned long long>(after - before), kOverheadOps);
}

/// Chaos workload whose LAST `partition_ops` operations run with the
/// ring cut in half (writes issued post-heal would re-replicate and
/// mask the damage); then heal and let the digest pass repair.
/// Returns the repair bill — the convergence cost of the outage.
Row bench_partition(std::size_t partition_ops) {
  Cluster<DvvMechanism> cluster(base_config(dvv::net::TransportKind::kSim), {});
  Rng rng(kSeed);
  const std::size_t half = kServers / 2;
  std::vector<std::vector<ReplicaId>> groups(2);
  for (ReplicaId r = 0; r < kServers; ++r) {
    groups[r < half ? 0 : 1].push_back(r);
  }

  // "Lost to the cut" = fan-out the coordinator could not even send
  // (refused links, counted off the receipt) plus in-flight messages
  // the partition killed before delivery.
  std::size_t fanout_suppressed = 0;
  for (std::size_t i = 0; i < kPartitionOps; ++i) {
    if (i == kPartitionOps - partition_ops) cluster.partition(groups, "bench");
    const Key key = "key-" + std::to_string(rng.index(kPartitionKeys));
    const auto pref = cluster.preference_list(key);
    const auto ctx = cluster.get(key, pref[0]).context;
    const auto receipt = cluster.put(key, pref[0], dvv::kv::client_actor(0), ctx,
                                     "w" + std::to_string(i), pref);
    fanout_suppressed += (pref.size() - 1) - receipt.replicated_to;
    cluster.pump();
  }
  cluster.heal();
  cluster.pump_all();

  Row row;
  row.section = "partition";
  row.variant = "heal+digest-repair";
  row.ops = kPartitionOps;
  row.partition_ops = partition_ops;
  row.partition_drops =
      fanout_suppressed + cluster.transport().stats().partition_dropped;
  const auto start = std::chrono::steady_clock::now();
  const auto report = cluster.anti_entropy_digest();
  row.wall_ms = ms_since(start);
  row.keys_shipped = report.stats.keys_shipped;
  row.repair_wire_bytes = report.stats.wire_bytes;
  DVV_ASSERT_MSG(cluster.anti_entropy() == 0,
                 "digest repair must reach the legacy fixed point");
  return row;
}

void write_json(const std::vector<Row>& rows) {
  std::FILE* f = std::fopen("BENCH_transport.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_transport.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"transport\",\n  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"obs\": %s,\n",
               dvv::obs::registry().json_snapshot().c_str());
  std::fprintf(f,
               "  \"config\": {\"servers\": %zu, \"replication\": %zu, "
               "\"keys\": %zu, \"overhead_ops\": %zu, \"partition_ops\": %zu},\n"
               "  \"rows\": [\n",
               kServers, kReplication, kKeys, kOverheadOps, kPartitionOps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"section\": \"%s\", \"variant\": \"%s\", \"ops\": %zu, "
        "\"wall_ms\": %.3f, \"kops_per_sec\": %.1f, \"overhead_pct\": %.1f, "
        "\"partition_ops\": %zu, \"keys_shipped\": %zu, "
        "\"repair_wire_bytes\": %zu, \"partition_drops\": %zu}%s\n",
        r.section.c_str(), r.variant.c_str(), r.ops, r.wall_ms, r.kops_per_sec,
        r.overhead_pct, r.partition_ops, r.keys_shipped, r.repair_wire_bytes,
        r.partition_drops, i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf("==== transport: message-layer overhead vs direct calls ====\n");
  std::printf("%zu coordinator puts + %zu-way fan-out, seed %llu\n\n",
              kOverheadOps, kReplication - 1,
              static_cast<unsigned long long>(kSeed));

  // Interleaved best-of-kRepeats: digests asserted identical across
  // every variant and repetition inside bench_overhead_rows itself.
  std::vector<Row> rows = bench_overhead_rows();
  rows.push_back(bench_roof());

  dvv::util::TextTable overhead_table;
  overhead_table.header({"variant", "kops/s", "wall ms", "overhead %"});
  for (const Row& r : rows) {
    if (r.section != "overhead" && r.section != "roof") continue;
    overhead_table.row({r.variant, dvv::util::fixed(r.kops_per_sec, 1),
                        dvv::util::fixed(r.wall_ms, 2),
                        r.section == "roof"
                            ? std::string("(roof)")
                            : dvv::util::fixed(r.overhead_pct, 1)});
  }
  std::printf("%s\n", overhead_table.to_string().c_str());

  audit_steady_state_allocs();

  std::printf("==== transport: convergence cost vs partition duration ====\n");
  std::printf("%zu puts over %zu keys, ring cut %zu/%zu for the LAST D ops\n\n",
              kPartitionOps, kPartitionKeys, kServers / 2,
              kServers - kServers / 2);

  dvv::util::TextTable partition_table;
  partition_table.header({"partition ops", "msgs lost to cut", "keys shipped",
                          "repair bytes", "repair ms"});
  std::size_t prev_drops = 0;
  for (const std::size_t d : {0u, 125u, 250u, 500u, 1000u, 2000u}) {
    rows.push_back(bench_partition(d));
    const Row& r = rows.back();
    partition_table.row({std::to_string(r.partition_ops),
                         std::to_string(r.partition_drops),
                         std::to_string(r.keys_shipped),
                         dvv::util::human_bytes(
                             static_cast<double>(r.repair_wire_bytes)),
                         dvv::util::fixed(r.wall_ms, 2)});
    DVV_ASSERT_MSG(d == 0 || r.partition_drops > prev_drops,
                   "a longer partition must cut more messages");
    prev_drops = r.partition_drops;
  }
  std::printf("%s\n", partition_table.to_string().c_str());

  write_json(rows);
  std::printf("wrote BENCH_transport.json (%zu rows)\n", rows.size());
  return 0;
}
