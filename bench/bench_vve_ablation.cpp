// bench_vve_ablation — experiment E11 (related work, §3): version
// vectors with exceptions (WinFS) vs dotted version vectors.
//
// The paper's §3 argument: VVE can express any causal history via
// exception lists, but "in most multi-version distributed storage
// systems, a client can only replace all versions in the repository by
// a new version, making DVV with a single dot sufficient".  Both
// mechanisms are exact (E9); this ablation measures what the general
// encoding costs relative to the single dot:
//
//   1. per-GET metadata bytes and total clock slots on an identical
//      end-to-end workload (both exact, so identical sibling sets);
//   2. comparison cost: VVE subset-testing walks the represented sets,
//      DVV does one dot lookup.
#include <chrono>
#include <cstdio>
#include <string>

#include "codec/clock_codec.hpp"
#include "core/dotted_version_vector.hpp"
#include "core/vve.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "util/fmt.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::util::fixed;
using dvv::workload::WorkloadSpec;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

WorkloadSpec spec_for(std::size_t clients) {
  WorkloadSpec spec;
  spec.keys = 24;
  spec.zipf_skew = 0.99;
  spec.clients = clients;
  spec.operations = 3000;
  spec.read_before_write = 0.7;
  spec.replicate_probability = 0.7;
  spec.anti_entropy_every = 100;
  spec.seed = 0xE11;
  return spec;
}

template <typename M>
dvv::workload::ReplayStats run_workload(std::size_t clients, M mechanism) {
  const auto spec = spec_for(clients);
  const auto trace = dvv::workload::generate_trace(spec, config().replication);
  Cluster<M> cluster(config(), std::move(mechanism));
  return dvv::workload::replay(cluster, trace);
}

template <typename F>
double time_ns(F&& f, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) f();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() / iters;
}

}  // namespace

int main() {
  std::printf("==== E11 (related work §3): VVE (WinFS) vs DVV ====\n\n");

  // ---- end-to-end metadata on identical workloads ----------------------
  dvv::util::TextTable meta;
  meta.header({"clients", "mechanism", "GET meta B (mean)", "p95",
               "clock slots/GET", "final meta bytes"});
  for (const std::size_t clients : {16u, 64u, 256u}) {
    const auto vve = run_workload(clients, dvv::kv::VveMechanism{});
    const auto dvv_s = run_workload(clients, dvv::kv::DvvMechanism{});
    meta.row({std::to_string(clients), "vve",
              fixed(vve.get_metadata_bytes.mean(), 1),
              fixed(vve.get_metadata_bytes.p95(), 0),
              fixed(vve.get_clock_entries.mean(), 2),
              std::to_string(vve.final_metadata_bytes)});
    meta.row({std::to_string(clients), "dvv",
              fixed(dvv_s.get_metadata_bytes.mean(), 1),
              fixed(dvv_s.get_metadata_bytes.p95(), 0),
              fixed(dvv_s.get_clock_entries.mean(), 2),
              std::to_string(dvv_s.final_metadata_bytes)});
  }
  std::printf("%s\n", meta.to_string().c_str());

  // ---- comparison cost on equivalent clocks ----------------------------
  // History: n servers each contributed k=32 events; version X is the
  // sibling created from a stale read (one event above a shared past).
  dvv::util::TextTable cost;
  cost.header({"history events", "vve compare ns", "dvv compare ns"});
  for (const std::size_t n : {2u, 8u, 32u, 128u}) {
    constexpr dvv::core::Counter kPerActor = 32;
    dvv::core::VersionVector past;
    dvv::core::VersionVectorWithExceptions vve_past;
    for (dvv::core::ActorId a = 0; a < n; ++a) {
      past.set(a, kPerActor);
      for (dvv::core::Counter c = 1; c <= kPerActor; ++c) {
        vve_past.add(dvv::core::Dot{a, c});
      }
    }
    const dvv::core::DottedVersionVector dvv_a(dvv::core::Dot{0, kPerActor + 1}, past);
    const dvv::core::DottedVersionVector dvv_b(dvv::core::Dot{1, kPerActor + 1}, past);
    auto vve_a = vve_past;
    vve_a.add(dvv::core::Dot{0, kPerActor + 1});
    auto vve_b = vve_past;
    vve_b.add(dvv::core::Dot{1, kPerActor + 1});

    const double vve_ns = time_ns(
        [&] {
          volatile auto o = vve_a.compare(vve_b);
          (void)o;
        },
        2000);
    const double dvv_ns = time_ns(
        [&] {
          volatile auto o = dvv_a.compare(dvv_b);
          (void)o;
        },
        20000);
    cost.row({std::to_string(n * kPerActor), fixed(vve_ns, 1), fixed(dvv_ns, 1)});
  }
  std::printf("%s\n", cost.to_string().c_str());

  std::printf("shape check: identical sibling sets (both exact), but VVE pays\n");
  std::printf("exception bookkeeping and set-walk comparisons that grow with\n");
  std::printf("history size, while DVV's dot keeps both flat — §3's \"DVV with\n");
  std::printf("a single dot [is] sufficient\" for the storage workflow.\n");
  return 0;
}
