// bench_dvvset_ablation — experiment E10 (ablation): what the compact
// sibling-set representation buys over per-sibling DVVs.
//
// Both mechanisms are EXACT (E9); they differ only in how they spell
// the same causal information.  Two measurements:
//
//   1. metadata bytes per stored key as the live sibling count grows
//      (per-sibling DVVs pay dot+vector per sibling; DVVSet pays one
//      (actor, counter) pair per coordinating server, total);
//   2. wall-clock cost of the hot server-side operations (update, sync,
//      context) at a given sibling load, via a simple timed loop.
//
// This quantifies the design choice DESIGN.md S6 calls out and explains
// why Riak ultimately shipped the set form.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "codec/clock_codec.hpp"
#include "core/dvv_kernel.hpp"
#include "core/dvv_set.hpp"
#include "core/version_vector.hpp"
#include "util/fmt.hpp"

namespace {

using namespace dvv::core;
using dvv::util::fixed;

constexpr ActorId kA = 0;

/// Builds a sibling-set with `siblings` live concurrent values through
/// one server (all writers raced on the same stale read).
template <typename Kernel>
Kernel explode(std::size_t siblings) {
  Kernel k;
  k.update(kA, VersionVector{}, std::string("seed"));
  const auto stale = k.context();
  for (std::size_t i = 0; i < siblings; ++i) {
    k.update(kA, stale, "w" + std::to_string(i));
  }
  return k;
}

template <typename F>
double time_us(F&& f, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) f();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count() / iters;
}

}  // namespace

int main() {
  std::printf("==== E10 (ablation): per-sibling DVV vs compact DVVSet ====\n\n");

  // ---- size table -----------------------------------------------------
  dvv::util::TextTable size_table;
  size_table.header({"live siblings", "dvv meta bytes", "dvvset meta bytes",
                     "ratio", "dvv entries", "dvvset entries"});
  for (const std::size_t s : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto dvv_k = explode<DvvSiblings<std::string>>(s);
    const auto set_k = explode<DvvSet<std::string>>(s);
    const auto dvv_bytes = dvv::codec::metadata_size(dvv_k);
    const auto set_bytes = dvv::codec::metadata_size(set_k);
    size_table.row({std::to_string(s), std::to_string(dvv_bytes),
                    std::to_string(set_bytes),
                    fixed(static_cast<double>(dvv_bytes) /
                              static_cast<double>(set_bytes), 1) + "x",
                    std::to_string(dvv_k.clock_entries()),
                    std::to_string(set_k.clock_entries())});
  }
  std::printf("%s\n", size_table.to_string().c_str());

  // ---- operation cost table --------------------------------------------
  dvv::util::TextTable op_table;
  op_table.header({"live siblings", "op", "dvv us/op", "dvvset us/op"});
  for (const std::size_t s : {4u, 32u, 128u}) {
    const auto dvv_base = explode<DvvSiblings<std::string>>(s);
    const auto set_base = explode<DvvSet<std::string>>(s);
    constexpr int kIters = 2000;

    const double dvv_ctx = time_us([&] { (void)dvv_base.context(); }, kIters);
    const double set_ctx = time_us([&] { (void)set_base.context(); }, kIters);
    op_table.row({std::to_string(s), "context()", fixed(dvv_ctx, 3),
                  fixed(set_ctx, 3)});

    const double dvv_upd = time_us(
        [&] {
          auto copy = dvv_base;
          copy.update(kA, copy.context(), "x");
        },
        kIters);
    const double set_upd = time_us(
        [&] {
          auto copy = set_base;
          copy.update(kA, copy.context(), "x");
        },
        kIters);
    op_table.row({std::to_string(s), "read+update", fixed(dvv_upd, 3),
                  fixed(set_upd, 3)});

    const double dvv_sync = time_us(
        [&] {
          auto copy = dvv_base;
          copy.sync(dvv_base);
        },
        kIters / 4);
    const double set_sync = time_us(
        [&] {
          auto copy = set_base;
          copy.sync(set_base);
        },
        kIters / 4);
    op_table.row({std::to_string(s), "sync(self-copy)", fixed(dvv_sync, 3),
                  fixed(set_sync, 3)});
  }
  std::printf("%s\n", op_table.to_string().c_str());

  std::printf("shape check: size ratio grows linearly with the sibling count\n");
  std::printf("(dvvset amortizes the causal past across the whole set); sync\n");
  std::printf("cost for per-sibling dvv is quadratic in siblings (pairwise\n");
  std::printf("dominance checks) vs linear entry merges for dvvset.\n");
  return 0;
}
