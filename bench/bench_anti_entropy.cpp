// bench_anti_entropy — wire cost of digest-based replica repair vs the
// full gather-merge-scatter pass, as a function of divergence rate.
//
// Setup: a 5-server R=3 cluster fully converged on K keys; then a
// fraction d of the keys receives an update that reaches only its
// coordinator (maximal per-key divergence).  Repairing that state with
// the legacy full pass ships every key's state regardless of d; the
// digest pass (src/sync) ships Merkle hashes first and state only for
// the divergent keys.  Expected shape: digest wire bytes scale with d
// (plus a small tree-walk overhead) and undercut the full pass for
// every d < 100%; at d = 100% the hash exchange is pure overhead and
// the full pass wins slightly — exactly the trade Riak's AAE makes.
//
// Output: one table + BENCH_anti_entropy.json (schema: {bench, seed,
// config, rows[]}) for downstream tooling, per mechanism.
#include <cstdio>
#include <string>
#include <vector>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "obs/obs.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;

constexpr std::size_t kKeys = 256;
constexpr std::size_t kValueBytes = 32;
constexpr std::uint64_t kSeed = 0xAAE;

ClusterConfig bench_config() {
  ClusterConfig cfg;
  cfg.servers = 5;
  cfg.replication = 3;
  cfg.vnodes = 64;
  return cfg;
}

std::string key_name(std::size_t i) { return "key-" + std::to_string(i); }

struct Row {
  std::string mechanism;
  std::size_t divergence_pct = 0;
  std::size_t diverged_keys = 0;
  std::size_t digest_wire_bytes = 0;
  std::size_t digest_keys_compared = 0;
  std::size_t digest_keys_shipped = 0;
  std::size_t digest_rounds = 0;
  std::size_t digest_nodes = 0;
  std::size_t sessions = 0;
  std::size_t sweeps = 0;
  std::size_t full_wire_bytes = 0;
};

/// Wire bytes the legacy full pass would move for the cluster's current
/// state: per key, every alive preference replica ships its state to
/// the coordinator (gather) and receives the merge back (scatter) —
/// the coordinator's own copies stay local.  Pure accounting; does not
/// mutate the cluster.
template <typename M>
std::size_t full_pass_wire_bytes(Cluster<M>& cluster) {
  using Stored = typename M::Stored;
  const M& mech = cluster.mechanism();
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const Key key = key_name(i);
    const std::size_t key_bytes = 1 + key.size();  // varint(len) + key
    const auto pref = cluster.preference_list(key);
    Stored merged;
    for (const ReplicaId r : pref) {
      if (const Stored* s = cluster.replica(r).find(key)) {
        mech.sync(merged, *s);
        if (r != pref[0]) bytes += key_bytes + mech.total_bytes(*s);
      }
    }
    for (const ReplicaId r : pref) {
      if (r != pref[0]) bytes += key_bytes + mech.total_bytes(merged);
    }
  }
  return bytes;
}

template <typename M>
Row run_one(const char* name, std::size_t divergence_pct) {
  Cluster<M> cluster(bench_config(), {});
  ClientSession<M> writer(dvv::kv::client_actor(0), cluster);

  // Converged base state: every key written with full replication.
  for (std::size_t i = 0; i < kKeys; ++i) {
    writer.get(key_name(i));
    writer.put(key_name(i), "base" + std::string(kValueBytes, 'x'));
  }

  // Divergence: d% of the keys get a coordinator-only update.
  dvv::util::Rng rng(kSeed);
  std::vector<std::size_t> order(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t diverged = kKeys * divergence_pct / 100;
  for (std::size_t i = 0; i < diverged; ++i) {
    const Key key = key_name(order[i]);
    writer.get(key);
    writer.put_via(key, cluster.preference_list(key)[0],
                   "new" + std::string(kValueBytes, 'y'), {});
  }

  Row row;
  row.mechanism = name;
  row.divergence_pct = divergence_pct;
  row.diverged_keys = diverged;
  row.full_wire_bytes = full_pass_wire_bytes(cluster);

  const auto report = cluster.anti_entropy_digest();
  row.digest_wire_bytes = report.stats.wire_bytes;
  row.digest_keys_compared = report.stats.keys_compared;
  row.digest_keys_shipped = report.stats.keys_shipped;
  row.digest_rounds = report.stats.rounds;
  row.digest_nodes = report.stats.nodes_exchanged;
  row.sessions = report.sessions;
  row.sweeps = report.sweeps;

  DVV_ASSERT_MSG(row.digest_keys_shipped == diverged,
                 "digest pass must repair exactly the diverged keys");
  DVV_ASSERT_MSG(cluster.anti_entropy() == 0,
                 "digest pass must leave nothing for the legacy pass");
  return row;
}

template <typename M>
void sweep(const char* name, std::vector<Row>& rows) {
  for (const std::size_t pct : {0u, 1u, 5u, 10u, 25u, 50u, 75u, 100u}) {
    rows.push_back(run_one<M>(name, pct));
  }
}

void write_json(const std::vector<Row>& rows) {
  std::FILE* f = std::fopen("BENCH_anti_entropy.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_anti_entropy.json\n");
    return;
  }
  const ClusterConfig cfg = bench_config();
  std::fprintf(f, "{\n  \"bench\": \"anti_entropy\",\n  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"obs\": %s,\n", dvv::obs::registry().json_snapshot().c_str());
  std::fprintf(f,
               "  \"config\": {\"servers\": %zu, \"replication\": %zu, "
               "\"keys\": %zu, \"value_bytes\": %zu, \"merkle_fanout\": %zu, "
               "\"merkle_levels\": %zu},\n",
               cfg.servers, cfg.replication, kKeys, kValueBytes,
               cfg.aae.fanout, cfg.aae.levels);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"mechanism\": \"%s\", \"divergence_pct\": %zu, "
        "\"diverged_keys\": %zu, \"digest_wire_bytes\": %zu, "
        "\"digest_keys_compared\": %zu, \"digest_keys_shipped\": %zu, "
        "\"digest_rounds\": %zu, \"digest_nodes_exchanged\": %zu, "
        "\"sessions\": %zu, \"sweeps\": %zu, \"full_wire_bytes\": %zu, "
        "\"bytes_ratio\": %.4f}%s\n",
        r.mechanism.c_str(), r.divergence_pct, r.diverged_keys,
        r.digest_wire_bytes, r.digest_keys_compared, r.digest_keys_shipped,
        r.digest_rounds, r.digest_nodes, r.sessions, r.sweeps,
        r.full_wire_bytes,
        r.full_wire_bytes == 0
            ? 0.0
            : static_cast<double>(r.digest_wire_bytes) /
                  static_cast<double>(r.full_wire_bytes),
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  // Metrics on for the whole run (behavior-invariant by the obs twin
  // property) so the embedded registry snapshot holds real numbers.
  dvv::obs::set_metrics_enabled(true);
  std::printf("==== anti-entropy: digest repair vs full pass wire cost ====\n");
  std::printf("%zu keys, 5 servers, R=3, coordinator-only updates on d%% of "
              "keys; seed=0x%llX\n\n",
              kKeys, static_cast<unsigned long long>(kSeed));

  std::vector<Row> rows;
  sweep<dvv::kv::DvvMechanism>("dvv", rows);
  sweep<dvv::kv::DvvSetMechanism>("dvvset", rows);
  sweep<dvv::kv::ServerVvMechanism>("server-vv", rows);
  sweep<dvv::kv::ClientVvMechanism>("client-vv", rows);
  sweep<dvv::kv::VveMechanism>("vve", rows);
  sweep<dvv::kv::HistoryMechanism>("causal-history", rows);

  dvv::util::TextTable table;
  table.header({"mechanism", "diverg %", "keys diff", "digest bytes",
                "full bytes", "ratio", "shipped", "rounds"});
  bool digest_wins_below_full = true;
  for (const Row& r : rows) {
    const double ratio =
        r.full_wire_bytes == 0
            ? 0.0
            : static_cast<double>(r.digest_wire_bytes) /
                  static_cast<double>(r.full_wire_bytes);
    if (r.divergence_pct < 100 && r.digest_wire_bytes >= r.full_wire_bytes) {
      digest_wins_below_full = false;
    }
    table.row({r.mechanism, std::to_string(r.divergence_pct),
               std::to_string(r.diverged_keys),
               std::to_string(r.digest_wire_bytes),
               std::to_string(r.full_wire_bytes), dvv::util::fixed(ratio, 3),
               std::to_string(r.digest_keys_shipped),
               std::to_string(r.digest_rounds)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: digest bytes < full bytes for every divergence "
              "< 100%%: %s\n",
              digest_wins_below_full ? "yes" : "NO (regression!)");
  write_json(rows);
  std::printf("wrote BENCH_anti_entropy.json\n");
  return digest_wins_below_full ? 0 : 1;
}
