// bench_fig1_replay — experiments E1, E2, E3 (the paper's Figure 1).
//
// Replays the two-server, one-object scenario of Figure 1 on all three
// mechanisms and prints the causality information after each relevant
// event, in the paper's own notation:
//
//   panel (a): causal histories      {A1,A3} || {A1,A2}        (ground truth)
//   panel (b): per-server VVs        [2,0] < [3,0]             (PROBLEM)
//   panel (c): dotted version vectors (A,3)[1,0] || (A,2)[1,0] (fixed)
//
// The output is the paper's figure as text; the same scenario is
// machine-asserted in tests/fig1_test.cpp.
#include <cstdio>
#include <string>
#include <vector>

#include "core/causal_history.hpp"
#include "core/causality.hpp"
#include "core/dvv_kernel.hpp"
#include "core/history_kernel.hpp"
#include "core/vv_kernels.hpp"
#include "util/fmt.hpp"

namespace {

using namespace dvv::core;

constexpr ActorId kA = 0;
constexpr ActorId kB = 1;
const std::vector<ActorId> kOrder{kA, kB};

std::string name(ActorId id) { return std::string(1, static_cast<char>('A' + id)); }

template <typename Kernel, typename Render>
std::string render_siblings(const Kernel& kernel, Render&& render) {
  return dvv::util::join(kernel.versions(), " || ",
                         [&](const auto& v) { return render(v); });
}

void line(const char* step, const std::string& a_state, const std::string& b_state) {
  std::printf("  %-46s A: %-28s B: %s\n", step, a_state.c_str(), b_state.c_str());
}

}  // namespace

int main() {
  std::printf("==== E1/E2/E3: Figure 1 replay (2 servers, 1 object) ====\n");
  std::printf("events: w1=Peter blind write; both clients read; w2=Peter RMW;\n");
  std::printf("        sync A->B; w3=Mary writes with STALE context; w4=client\n");
  std::printf("        at B writes having read {A1,A2}; sync; final reconcile.\n\n");

  // ------------------------------------------------ panel (a): ground truth
  {
    std::printf("-- panel (a): causal histories (exact, unbounded) --\n");
    HistorySiblings<std::string> a, b;
    auto ra = [&] {
      return render_siblings(a, [](const auto& v) { return v.history.to_string(name); });
    };
    auto rb = [&] {
      return render_siblings(b, [](const auto& v) { return v.history.to_string(name); });
    };
    a.update(kA, CausalHistory{}, "v1");
    line("w1: Peter writes v1", ra(), rb());
    const auto peter = a.context();
    const auto mary = a.context();
    a.update(kA, peter, "v2");
    line("w2: Peter RMW -> v2", ra(), rb());
    b.sync(a);
    const auto bclient = b.context();
    line("sync A->B", ra(), rb());
    a.update(kA, mary, "v3");
    line("w3: Mary writes with stale ctx {A1}", ra(), rb());
    b.update(kB, bclient, "v4");
    line("w4: B-client writes having read {A1,A2}", ra(), rb());
    b.sync(a);
    a.sync(b);
    line("sync A<->B", ra(), rb());
    const auto ord =
        a.versions()[0].history.compare(a.versions()[1].history);
    std::printf("  verdict: the two survivors are %s (expected ||)\n\n",
                std::string(to_string(ord)).c_str());
  }

  // --------------------------------------------- panel (b): per-server VVs
  {
    std::printf("-- panel (b): per-server version vectors (PROBLEMATIC) --\n");
    ServerVvSiblings<std::string> a, b;
    auto ra = [&] {
      return render_siblings(
          a, [](const auto& v) { return v.clock.to_string_dense(kOrder); });
    };
    auto rb = [&] {
      return render_siblings(
          b, [](const auto& v) { return v.clock.to_string_dense(kOrder); });
    };
    a.update(kA, VersionVector{}, "v1");
    line("w1: Peter writes v1", ra(), rb());
    const auto peter = a.context();
    const auto mary = a.context();
    a.update(kA, peter, "v2");
    line("w2: Peter RMW -> v2", ra(), rb());
    b.sync(a);
    line("sync A->B", ra(), rb());
    a.update(kA, mary, "v3");
    line("w3: Mary writes with stale ctx [1,0]", ra(), rb());
    const auto ord = a.versions()[0].clock.compare(a.versions()[1].clock);
    std::printf("  PROBLEM: the true siblings compare as %s %s %s — false dominance\n",
                a.versions()[0].clock.to_string_dense(kOrder).c_str(),
                std::string(to_string(ord)).c_str(),
                a.versions()[1].clock.to_string_dense(kOrder).c_str());
    b.sync(a);
    line("sync A->B (B receives [3,0])", ra(), rb());
    std::printf("  DATA LOSS: B now stores %zu version(s): %s — v2 is gone\n\n",
                b.sibling_count(), b.versions()[0].value.c_str());
  }

  // ------------------------------------------- panel (c): dotted version vectors
  {
    std::printf("-- panel (c): dotted version vectors (this paper) --\n");
    DvvSiblings<std::string> a, b;
    auto ra = [&] {
      return render_siblings(
          a, [](const auto& v) { return v.clock.to_string_dense(kOrder, name); });
    };
    auto rb = [&] {
      return render_siblings(
          b, [](const auto& v) { return v.clock.to_string_dense(kOrder, name); });
    };
    a.update(kA, VersionVector{}, "v1");
    line("w1: Peter writes v1", ra(), rb());
    const auto peter = a.context();
    const auto mary = a.context();
    a.update(kA, peter, "v2");
    line("w2: Peter RMW -> v2", ra(), rb());
    b.sync(a);
    const auto bclient = b.context();
    line("sync A->B", ra(), rb());
    a.update(kA, mary, "v3");
    line("w3: Mary writes with stale ctx [1,0]", ra(), rb());
    const auto ord = a.versions()[1].clock.compare(a.versions()[0].clock);
    std::printf("  FIXED: %s %s %s — concurrency preserved with 1 server entry\n",
                a.versions()[1].clock.to_string_dense(kOrder, name).c_str(),
                std::string(to_string(ord)).c_str(),
                a.versions()[0].clock.to_string_dense(kOrder, name).c_str());
    b.update(kB, bclient, "v4");
    line("w4: B-client writes having read [2,0]", ra(), rb());
    b.sync(a);
    a.sync(b);
    line("sync A<->B", ra(), rb());
    std::printf("  B keeps %zu true siblings; v2 correctly superseded by v4\n",
                b.sibling_count());

    // Final reconciliation as in the figure's last state.
    DvvSiblings<std::string> fresh;
    fresh.update(kA, VersionVector{}, "v1");
    const auto stale = fresh.context();
    fresh.update(kA, fresh.context(), "v2");
    fresh.update(kA, stale, "v3");
    fresh.update(kA, fresh.context(), "v5");
    std::printf("  final reconciling write at A: %s  (paper: (A,4)[3,0])\n\n",
                fresh.versions()[0].clock.to_string_dense(kOrder, name).c_str());
  }

  std::printf("shape check: panel (a) == panel (c) survivors at every step;\n");
  std::printf("panel (b) loses a sibling at the first post-race sync.  Matches\n");
  std::printf("the paper's Figure 1 exactly (literal clocks asserted in tests).\n");
  return 0;
}
