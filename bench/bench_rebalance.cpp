// bench_rebalance — wire cost of a membership rebalance as a function
// of how much the new owner's state actually DIVERGES from the data it
// claims: the elastic-ring subsystem's headline number.
//
// Setup: a 6-server R=3 ring fully converged on K keys.  Server 5
// gracefully LEAVES (its claimed ranges transfer to the survivors —
// real movement, the constant cost of shrinking), the survivors then
// overwrite a fraction d of the keys while 5 is away, and 5 REJOINS.
// The member-list partitioner puts the rejoiner back on its old vnode
// tokens, so it re-claims exactly the ranges it still holds — and the
// Merkle transfer walks ship ONLY the keys that changed in its
// absence.  Expected shape: rejoin wire bytes scale with d; at d = 0
// the walks are DIGEST-ONLY — tree-node comparisons, ZERO states
// shipped.  The floor costs a few dozen bytes per (partition, owner,
// source) walk, so it grows with the number of OCCUPIED PARTITIONS —
// bounded by ring geometry (members x vnodes arcs), not by the
// keyspace — and shrinks as a fraction of the data as K grows.
// Bytes follow keys moved times divergence, never the keyspace.
//
// Output: one table + BENCH_rebalance.json (schema: {bench, seed,
// config, rows[]}) for downstream tooling, per mechanism, plus a
// keyspace sweep at fixed divergence showing the digest-only floor's
// share of the full-keyspace cost FALLING as the keyspace grows 16x
// (the ratio column), while a naive ship-everything rebalance stays
// at ratio 1 by construction.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "membership/membership.hpp"
#include "obs/obs.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;

constexpr std::size_t kServers = 6;
constexpr std::size_t kValueBytes = 32;
constexpr std::uint64_t kSeed = 0x4EBA1;
constexpr ReplicaId kChurner = 5;  ///< the slot that leaves and rejoins

ClusterConfig bench_config() {
  ClusterConfig cfg;
  cfg.servers = kServers;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

std::string key_name(std::size_t i) { return "key-" + std::to_string(i); }

struct Row {
  std::string mechanism;
  std::string transition;  ///< "leave" or "rejoin"
  std::size_t keys = 0;    ///< keyspace size K
  std::size_t divergence_pct = 0;
  std::size_t diverged_keys = 0;
  std::size_t keys_shipped = 0;
  std::size_t wire_bytes = 0;
  std::size_t rounds = 0;
  std::size_t nodes_exchanged = 0;
  std::size_t transfers = 0;
  std::size_t full_state_bytes = 0;  ///< shipping the whole keyspace once
};

/// Wire bytes a naive "ship everything to the new owner" rebalance
/// would move: every key's coordinator state once.  Pure accounting.
template <typename M>
std::size_t full_keyspace_bytes(Cluster<M>& cluster, std::size_t keys) {
  const M& mech = cluster.mechanism();
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < keys; ++i) {
    const Key key = key_name(i);
    if (const auto* s =
            cluster.replica(cluster.preference_list(key)[0]).find(key)) {
      bytes += 1 + key.size() + mech.total_bytes(*s);
    }
  }
  return bytes;
}

template <typename M>
void run_one(const char* name, std::size_t keys, std::size_t divergence_pct,
             std::vector<Row>& rows) {
  Cluster<M> cluster(bench_config(), {});
  ClientSession<M> writer(dvv::kv::client_actor(0), cluster);

  // Converged base state: every key written with full replication.
  for (std::size_t i = 0; i < keys; ++i) {
    writer.get(key_name(i));
    writer.put(key_name(i), "base" + std::string(kValueBytes, 'x'));
  }

  // Shrink: 5 leaves gracefully; its claimed ranges move to survivors.
  cluster.leave_node(kChurner);
  const dvv::membership::RebalanceStats leave = cluster.complete_rebalance();

  // Divergence while away: d% of the keys get a fully-replicated
  // update among the SURVIVORS (5 keeps only its stale copies).
  dvv::util::Rng rng(kSeed);
  std::vector<std::size_t> order(keys);
  for (std::size_t i = 0; i < keys; ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t diverged = keys * divergence_pct / 100;
  for (std::size_t i = 0; i < diverged; ++i) {
    const Key key = key_name(order[i]);
    writer.get(key);
    writer.put(key, "new" + std::string(kValueBytes, 'y'));
  }

  // Rejoin: 5 re-claims its old ranges; the walks ship only what
  // changed in its absence.
  cluster.join_node(kChurner);
  const dvv::membership::RebalanceStats rejoin = cluster.complete_rebalance();

  const std::size_t full = full_keyspace_bytes(cluster, keys);
  const auto emit = [&](const char* transition,
                        const dvv::membership::RebalanceStats& s) {
    Row row;
    row.mechanism = name;
    row.transition = transition;
    row.keys = keys;
    row.divergence_pct = divergence_pct;
    row.diverged_keys = diverged;
    row.keys_shipped = s.totals.keys_shipped;
    row.wire_bytes = s.totals.wire_bytes;
    row.rounds = s.totals.rounds;
    row.nodes_exchanged = s.totals.nodes_exchanged;
    row.transfers = s.transfers_completed;
    row.full_state_bytes = full;
    rows.push_back(row);
  };
  emit("leave", leave);
  emit("rejoin", rejoin);

  DVV_ASSERT_MSG(divergence_pct > 0 || rejoin.totals.keys_shipped == 0,
                 "a zero-divergence rejoin must be digest-only");
  DVV_ASSERT_MSG(cluster.anti_entropy() == 0,
                 "a completed rebalance must leave nothing to repair");
}

void write_json(const std::vector<Row>& rows) {
  std::FILE* f = std::fopen("BENCH_rebalance.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_rebalance.json\n");
    return;
  }
  const ClusterConfig cfg = bench_config();
  std::fprintf(f, "{\n  \"bench\": \"rebalance\",\n  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"obs\": %s,\n",
               dvv::obs::registry().json_snapshot().c_str());
  std::fprintf(f,
               "  \"config\": {\"servers\": %zu, \"replication\": %zu, "
               "\"vnodes\": %zu, \"value_bytes\": %zu, \"churner\": %u},\n",
               cfg.servers, cfg.replication, cfg.vnodes, kValueBytes,
               static_cast<unsigned>(kChurner));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"mechanism\": \"%s\", \"transition\": \"%s\", \"keys\": %zu, "
        "\"divergence_pct\": %zu, \"diverged_keys\": %zu, "
        "\"keys_shipped\": %zu, \"wire_bytes\": %zu, \"rounds\": %zu, "
        "\"nodes_exchanged\": %zu, \"transfers_completed\": %zu, "
        "\"full_state_bytes\": %zu, \"bytes_ratio\": %.4f}%s\n",
        r.mechanism.c_str(), r.transition.c_str(), r.keys, r.divergence_pct,
        r.diverged_keys, r.keys_shipped, r.wire_bytes, r.rounds,
        r.nodes_exchanged, r.transfers,
        r.full_state_bytes,
        r.full_state_bytes == 0
            ? 0.0
            : static_cast<double>(r.wire_bytes) /
                  static_cast<double>(r.full_state_bytes),
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  // Metrics on for the whole run (behavior-invariant by the obs twin
  // property) so the embedded registry snapshot holds real numbers.
  dvv::obs::set_metrics_enabled(true);
  std::printf("==== rebalance: transfer wire cost vs divergence ====\n");
  std::printf("%zu servers, R=3, server %u leaves -> d%% of keys updated -> "
              "rejoins; seed=0x%llX\n\n",
              kServers, static_cast<unsigned>(kChurner),
              static_cast<unsigned long long>(kSeed));

  std::vector<Row> rows;
  // Divergence sweep at a fixed keyspace, every mechanism.  Divergence
  // inner so the per-mechanism rejoin rows sit adjacent for the
  // monotonicity shape check below.
  constexpr std::size_t kSweepKeys = 512;
  const auto sweep = [&rows](auto mech_tag, const char* name) {
    using M = decltype(mech_tag);
    for (const std::size_t pct : {0u, 5u, 25u, 100u}) {
      run_one<M>(name, kSweepKeys, pct, rows);
    }
  };
  sweep(dvv::kv::DvvMechanism{}, "dvv");
  sweep(dvv::kv::DvvSetMechanism{}, "dvvset");
  sweep(dvv::kv::ServerVvMechanism{}, "server-vv");
  sweep(dvv::kv::ClientVvMechanism{}, "client-vv");
  sweep(dvv::kv::VveMechanism{}, "vve");
  sweep(dvv::kv::HistoryMechanism{}, "causal-history");
  // Keyspace sweep at zero divergence: the digest-only floor must not
  // grow with K the way shipping the keyspace would.
  for (const std::size_t keys : {128u, 512u, 2048u}) {
    run_one<dvv::kv::DvvMechanism>("dvv", keys, 0, rows);
  }

  dvv::util::TextTable table;
  table.header({"mechanism", "transition", "keys", "diverg %", "shipped",
                "wire bytes", "full bytes", "ratio"});
  bool shape_ok = true;
  std::size_t prior_rejoin_bytes = 0;
  std::string prior_key;
  for (const Row& r : rows) {
    const double ratio =
        r.full_state_bytes == 0
            ? 0.0
            : static_cast<double>(r.wire_bytes) /
                  static_cast<double>(r.full_state_bytes);
    if (r.transition == "rejoin") {
      // Monotone in divergence per (mechanism, keyspace), and the
      // zero-divergence floor ships no states at all.
      const std::string k = r.mechanism + "/" + std::to_string(r.keys);
      if (k == prior_key && r.wire_bytes < prior_rejoin_bytes) shape_ok = false;
      prior_key = k;
      prior_rejoin_bytes = r.wire_bytes;
      if (r.divergence_pct == 0 && r.keys_shipped != 0) shape_ok = false;
    }
    table.row({r.mechanism, r.transition, std::to_string(r.keys),
               std::to_string(r.divergence_pct), std::to_string(r.keys_shipped),
               std::to_string(r.wire_bytes), std::to_string(r.full_state_bytes),
               dvv::util::fixed(ratio, 3)});
  }
  // Shipping must dominate walking: full divergence costs at least
  // twice the digest-only floor for every (mechanism, keyspace) pair
  // that ran both ends of the sweep.
  for (const Row& lo : rows) {
    if (lo.transition != "rejoin" || lo.divergence_pct != 0) continue;
    for (const Row& hi : rows) {
      if (hi.transition == "rejoin" && hi.divergence_pct == 100 &&
          hi.mechanism == lo.mechanism && hi.keys == lo.keys &&
          hi.wire_bytes < 2 * lo.wire_bytes) {
        shape_ok = false;
      }
    }
  }
  // Sublinear floor: across the keyspace sweep the digest-only
  // rejoin's SHARE of the full-keyspace cost must fall as K grows —
  // the floor follows occupied partitions (ring geometry), not bytes
  // of data, so a naive ship-everything rebalance pulls away from it.
  std::map<std::size_t, double> floor_ratio;
  for (const Row& r : rows) {
    if (r.mechanism == "dvv" && r.transition == "rejoin" &&
        r.divergence_pct == 0 && r.full_state_bytes > 0) {
      floor_ratio[r.keys] = static_cast<double>(r.wire_bytes) /
                            static_cast<double>(r.full_state_bytes);
    }
  }
  double prior_ratio = 1e18;
  for (const auto& [keys, ratio] : floor_ratio) {
    (void)keys;
    if (ratio >= prior_ratio) shape_ok = false;
    prior_ratio = ratio;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: zero-divergence rejoin is digest-only and bytes "
              "grow with divergence: %s\n",
              shape_ok ? "yes" : "NO (regression!)");
  write_json(rows);
  std::printf("wrote BENCH_rebalance.json\n");
  return shape_ok ? 0 : 1;
}
