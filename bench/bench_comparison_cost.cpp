// bench_comparison_cost — experiment E4: the paper's "O(1) causality
// verification ... instead of O(n) for VV" claim, measured.
//
// For clocks with n entries (n = number of actors that ever wrote — the
// quantity that grows with clients in a VV world), measures:
//
//   * VersionVector::compare      — entrywise walk, expected O(n)
//   * DottedVersionVector::compare — two dot lookups, expected O(log n)
//     flat-map binary search, i.e. effectively flat in n (the paper's
//     O(1) with a hash map; the point is independence from n)
//   * CausalHistory::compare       — the ground truth's O(total events)
//
// Both comparands live on the same FlatMap substrate, so the measured
// gap is the algorithm, not the container.  google-benchmark binary:
// report the per-op time as a function of n and watch VV grow linearly
// while DVV stays flat.
#include <benchmark/benchmark.h>

#include <string>

#include "core/causal_history.hpp"
#include "core/dotted_version_vector.hpp"
#include "core/version_vector.hpp"
#include "util/rng.hpp"

namespace {

using dvv::core::ActorId;
using dvv::core::CausalHistory;
using dvv::core::Dot;
using dvv::core::DottedVersionVector;
using dvv::core::VersionVector;

/// Two concurrent VVs with n entries each: identical except the last
/// actor of each side is ahead — worst case, the walk must reach the
/// divergence to prove concurrency.
std::pair<VersionVector, VersionVector> concurrent_vvs(std::int64_t n) {
  VersionVector a, b;
  for (ActorId i = 0; i < static_cast<ActorId>(n); ++i) {
    a.set(i, 10);
    b.set(i, 10);
  }
  a.set(static_cast<ActorId>(n - 1), 11);
  b.set(static_cast<ActorId>(n - 2 >= 0 ? n - 2 : 0), 11);
  return {a, b};
}

/// Two concurrent DVVs whose pasts have n entries each (same data
/// volume as above), dots on different actors.
std::pair<DottedVersionVector, DottedVersionVector> concurrent_dvvs(std::int64_t n) {
  VersionVector past;
  for (ActorId i = 0; i < static_cast<ActorId>(n); ++i) past.set(i, 10);
  DottedVersionVector a(Dot{0, 11}, past);
  DottedVersionVector b(Dot{1, 11}, past);
  return {a, b};
}

void BM_VersionVectorCompare(benchmark::State& state) {
  const auto [a, b] = concurrent_vvs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VersionVectorCompare)->RangeMultiplier(4)->Range(2, 8192)->Complexity();

void BM_DvvCompare(benchmark::State& state) {
  const auto [a, b] = concurrent_dvvs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DvvCompare)->RangeMultiplier(4)->Range(2, 8192)->Complexity();

void BM_CausalHistoryCompare(benchmark::State& state) {
  // Worst case for explicit histories: the two sets diverge only at the
  // highest actor ids, so subset testing must walk ~10n shared events
  // before finding the mismatch.
  const auto [va, vb] = concurrent_vvs(state.range(0));
  auto downset = [](const VersionVector& v) {
    CausalHistory h;
    for (const auto& [actor, counter] : v.entries()) {
      for (dvv::core::Counter c = 1; c <= counter; ++c) h.insert(Dot{actor, c});
    }
    return h;
  };
  const CausalHistory a = downset(va);
  const CausalHistory b = downset(vb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CausalHistoryCompare)->RangeMultiplier(4)->Range(2, 512)->Complexity();

/// The server-side discard test ("is this version obsoleted by the
/// client context?") — the other operation the paper's O(1) argument
/// covers: one dot lookup for DVV vs a full descends() walk for VV.
void BM_VvObsoleteCheck(benchmark::State& state) {
  const auto [a, ctx] = concurrent_vvs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.descends(a));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VvObsoleteCheck)->RangeMultiplier(4)->Range(2, 8192)->Complexity();

void BM_DvvObsoleteCheck(benchmark::State& state) {
  const auto [a, b] = concurrent_dvvs(state.range(0));
  const VersionVector ctx = [&] {
    VersionVector v;
    a.fold_into(v);
    return v;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.obsoleted_by(ctx));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DvvObsoleteCheck)->RangeMultiplier(4)->Range(2, 8192)->Complexity();

}  // namespace

BENCHMARK_MAIN();
