// bench_pruning_safety — experiment E8: "these systems prune VV
// optimistically, which is unsafe, possibly leading to lost updates
// and/or to the introduction of false concurrency".
//
// Sweeps the prune cap of the client-VV mechanism on a contentious
// workload (many anonymous writers — the population that forces pruning
// in the first place) and reports, against the causal-history oracle:
//
//   lost updates    — values the truth retains but the subject discarded
//   false siblings  — values the subject retains but the truth obsoleted
//
// alongside the metadata the cap bought.  DVV is the last row: it needs
// no cap, keeps the metadata *smaller* than even aggressively pruned
// client-VV, and commits zero anomalies.
#include <cstdio>
#include <string>

#include "kv/mechanism.hpp"
#include "oracle/audit.hpp"
#include "util/fmt.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::ClusterConfig;
using dvv::oracle::mirrored_run;
using dvv::util::fixed;
using dvv::workload::WorkloadSpec;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 32;
  return cfg;
}

WorkloadSpec spec() {
  WorkloadSpec s;
  s.keys = 16;
  s.zipf_skew = 0.99;
  s.clients = 24;
  s.operations = 3000;
  s.read_before_write = 0.6;  // 40% anonymous one-shot writers
  s.replicate_probability = 1.0;
  s.anti_entropy_every = 25;
  s.seed = 0xE8;
  return s;
}

template <typename M>
void run_row(dvv::util::TextTable& table, const char* name, M mechanism) {
  const auto run = mirrored_run(spec(), config(), std::move(mechanism));
  table.row({name, std::to_string(run.report.lost_updates()),
             std::to_string(run.report.false_siblings()),
             std::to_string(run.report.values_checked),
             fixed(run.subject_stats.get_metadata_bytes.mean(), 1),
             std::to_string(run.subject_stats.final_metadata_bytes),
             run.report.exact() ? "yes" : "NO"});
}

}  // namespace

int main() {
  std::printf("==== E8: what optimistic VV pruning costs (oracle-audited) ====\n");
  std::printf("6 servers, R=3, 16 hot keys, 3000 writes, 40%% anonymous blind\n");
  std::printf("writers, anti-entropy every 25 ops, seed=0xE8; audits run after\n");
  std::printf("every operation against exact causal histories\n\n");

  dvv::util::TextTable table;
  table.header({"mechanism", "lost updates", "false siblings", "values checked",
                "GET meta B (mean)", "final meta bytes", "exact?"});
  run_row(table, "client-vv cap=2", dvv::kv::pruned_client_vv(2));
  run_row(table, "client-vv cap=4", dvv::kv::pruned_client_vv(4));
  run_row(table, "client-vv cap=8", dvv::kv::pruned_client_vv(8));
  run_row(table, "client-vv cap=16", dvv::kv::pruned_client_vv(16));
  run_row(table, "client-vv cap=32", dvv::kv::pruned_client_vv(32));
  run_row(table, "client-vv unpruned", dvv::kv::ClientVvMechanism{});
  run_row(table, "server-vv", dvv::kv::ServerVvMechanism{});
  run_row(table, "dvv", dvv::kv::DvvMechanism{});
  run_row(table, "dvvset", dvv::kv::DvvSetMechanism{});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape check: tighter caps -> more anomalies; the unpruned\n");
  std::printf("client-vv is exact but pays the metadata column for it;\n");
  std::printf("server-vv loses updates with bounded metadata (the Fig. 1b\n");
  std::printf("failure); dvv/dvvset are exact AND small — the paper's point.\n");
  return 0;
}
